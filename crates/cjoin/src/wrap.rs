//! Atomic circular-scan wrap bookkeeping: the active-query mask and the
//! per-slot remaining-page budgets, kept in plain atomic words so the
//! preprocessor's page loop (`crate::stage`) touches **no lock** at
//! steady state — the seed design took a `GqpState` write lock on every
//! fact page just to decrement `emit_left`.
//!
//! Protocol invariants, checked by the model (`tests/interleave_core.rs`):
//!
//! * **Budget-then-activate.** [`WrapLedger::activate`] stores the slot's
//!   page budget before raising its active bit (`Release`), paired with
//!   the `Acquire` mask loads in [`WrapLedger::snapshot`] /
//!   [`WrapLedger::record_page`]: a scan that observes the bit always
//!   sees an initialized budget — a freshly admitted query is never
//!   completed on a stale zero.
//! * **Decrements are single RMWs.** Each stamped page consumes exactly
//!   one unit of each member's budget via one atomic `fetch_update`; the
//!   slot whose decrement reaches zero is completed (bit cleared) by
//!   exactly that decrementer. A load-then-store decrement loses units
//!   under concurrent recording (fault re-dispatch racing the scan) and
//!   strands the query active forever — the
//!   `WrapMutation::LostDecrement` mutation (compiled only under
//!   `--cfg interleave`).
//! * **Checked, never wrapping.** The decrement is `checked_sub`: a slot
//!   re-seen after its wrap completed (e.g. a re-dispatched page carrying
//!   a stale member stamp) is ignored — flagged by a debug assertion —
//!   instead of wrapping the counter to `u64::MAX` and resurrecting the
//!   slot for 2⁶⁴ pages.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build
//! swaps the primitives for the model-checked shim.

use workshare_common::sync::{Arc, AtomicU64, AtomicUsize, Ordering};
use workshare_common::QueryBitmap;

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WrapMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Decrement with a load-then-store instead of one atomic RMW: two
    /// concurrent recorders can both observe the same budget and one
    /// page's consumption is silently lost.
    LostDecrement,
}

/// Lock-free active mask + per-slot remaining-page budgets for one stage's
/// circular scan. Slot ids come from the stage's control plane
/// (`alloc_slot`), which recycles them and never exceeds
/// [`WrapLedger::capacity`].
pub struct WrapLedger {
    /// One bit per slot, `Release`-set after the budget store and
    /// `Acquire`-read by the scan: see the module invariants.
    active: Vec<AtomicU64>,
    /// Remaining fact pages each slot must still see; meaningful only
    /// while the slot's active bit is set.
    emit_left: Vec<AtomicU64>,
    /// High-water mark of activated words + 1: the scan bound for every
    /// per-page walk ([`WrapLedger::any`], [`WrapLedger::snapshot`],
    /// [`WrapLedger::snapshot_cached`]) and the width floor of member
    /// bitmaps, mirroring the seed's grow-only `active_bits` so the filter
    /// bank stride never shrinks mid-run (and stays one word for ≤64-slot
    /// workloads). Bounding by the mark keeps the per-page cost
    /// proportional to the *live* high-water slot, not the ledger
    /// capacity. `Relaxed` suffices: a scan that loads a stale mark
    /// misses at most a just-activated bit, which only defers that slot's
    /// wrap window by a page (the circular scan serves it the full budget
    /// starting from the next snapshot), and the parked path cannot miss
    /// it at all — the activation's mark store is sequenced before the
    /// wait-set notify, whose mutex orders it before the woken
    /// predicate's reload.
    words_hi: AtomicUsize,
    #[cfg(interleave)]
    mutation: WrapMutation,
}

impl WrapLedger {
    /// Ledger for `capacity` slots (rounded up to whole 64-bit words),
    /// all inactive.
    pub fn new(capacity: usize) -> WrapLedger {
        let words = capacity.div_ceil(64).max(1);
        WrapLedger {
            active: (0..words).map(|_| AtomicU64::new(0)).collect(),
            emit_left: (0..words * 64).map(|_| AtomicU64::new(0)).collect(),
            words_hi: AtomicUsize::new(1),
            #[cfg(interleave)]
            mutation: WrapMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`WrapMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(capacity: usize, mutation: WrapMutation) -> WrapLedger {
        let mut ledger = WrapLedger::new(capacity);
        ledger.mutation = mutation;
        ledger
    }

    /// Slots this ledger can track.
    pub fn capacity(&self) -> usize {
        self.emit_left.len()
    }

    /// Activate `slot` with a budget of `pages`: budget store first, then
    /// the `Release` bit-set (budget-then-activate; the caller publishes
    /// the slot's filter entries even earlier — entries-then-activate,
    /// [`crate::epoch`]).
    pub fn activate(&self, slot: usize, pages: u64) {
        self.words_hi
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |hi| {
                Some(hi.max(slot / 64 + 1))
            })
            .unwrap();
        self.emit_left[slot].store(pages, Ordering::Relaxed);
        // `Release` on the bit: an `Acquire` mask read that observes it
        // also observes the budget store above (and, transitively, the
        // epoch publish sequenced before this call).
        self.active[slot / 64]
            .fetch_update(Ordering::Release, Ordering::Relaxed, |w| {
                Some(w | 1u64 << (slot % 64))
            })
            .unwrap();
    }

    /// Whether any slot is active (`Acquire`, the preprocessor's park
    /// predicate). Bounded by the high-water mark; a bit racing in past a
    /// stale mark is missed for this evaluation only (see `words_hi` for
    /// why that is safe, parked path included).
    pub fn any(&self) -> bool {
        let hi = self.words_hi.load(Ordering::Relaxed).max(1).min(self.active.len());
        self.active[..hi].iter().any(|w| w.load(Ordering::Acquire) != 0)
    }

    /// Whether `slot` is active (`Acquire`).
    pub fn is_active(&self, slot: usize) -> bool {
        self.active[slot / 64].load(Ordering::Acquire) & (1u64 << (slot % 64)) != 0
    }

    /// Remaining page budget of `slot` (advisory outside the slot's active
    /// window; tests and the model scenario).
    pub fn emit_left(&self, slot: usize) -> u64 {
        self.emit_left[slot].load(Ordering::Acquire)
    }

    /// The active mask as a member bitmap: the stamp the preprocessor
    /// attaches to a fact page. `Acquire` per word — a slot observed here
    /// has its budget and filter entries visible.
    pub fn snapshot(&self) -> QueryBitmap {
        // The high-water mark bounds the walk, so a stamp costs what the
        // live slot range costs, not the ledger capacity. A bit set past
        // a stale mark is left out of *this* stamp only — the slot's wrap
        // window starts at a later page, exactly as if it had activated a
        // moment later (see `words_hi`).
        let hi = self.words_hi.load(Ordering::Relaxed).max(1).min(self.active.len());
        // Word-wise copy — this runs on every mask change, so it must
        // cost what the seed's mask clone cost, not a per-bit rebuild.
        let mut words = Vec::with_capacity(hi);
        for word in &self.active[..hi] {
            words.push(word.load(Ordering::Acquire));
        }
        QueryBitmap::from_words(words)
    }

    /// Per-page stamp with allocation reuse: reload the mask words
    /// (`Acquire`, same visibility as [`WrapLedger::snapshot`]) and keep
    /// `cache` when they are unchanged — the common case, since the mask
    /// only moves on admission and completion — rebuilding via
    /// [`WrapLedger::snapshot`] otherwise. The preprocessor stamps every
    /// fact page, so the steady-state cost is a handful of loads instead
    /// of a bitmap allocation per page.
    pub fn snapshot_cached(&self, cache: &mut Arc<QueryBitmap>) {
        let hi = self.words_hi.load(Ordering::Relaxed).max(1).min(self.active.len());
        let cached = cache.words();
        for (wi, word) in self.active[..hi].iter().enumerate() {
            if word.load(Ordering::Acquire) != cached.get(wi).copied().unwrap_or(0) {
                *cache = Arc::new(self.snapshot());
                return;
            }
        }
    }

    /// Record one scanned fact page stamped with `members`: consume one
    /// unit of each member's budget, completing (bit-clearing) every slot
    /// whose budget reaches zero. Returns the completed slots. Lock-free:
    /// one `fetch_update` per member, no write lock — the replacement for
    /// the seed's per-page `state.write()` wrap block.
    pub fn record_page(&self, members: &QueryBitmap) -> Vec<u32> {
        let mut done = Vec::new();
        // Word-direct bit walk (not `iter_ones`): this runs once per fact
        // page, and the flattened loop keeps the per-member cost at the
        // decrement itself.
        for (wi, &word) in members.words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                #[cfg(interleave)]
                if self.mutation == WrapMutation::LostDecrement {
                    // Torn: observe-then-store in two operations; a
                    // concurrent recorder between them consumes a page that
                    // is never subtracted.
                    let seen = self.emit_left[slot].load(Ordering::Acquire);
                    let Some(next) = seen.checked_sub(1) else {
                        continue;
                    };
                    self.emit_left[slot].store(next, Ordering::Release);
                    if next == 0 {
                        self.deactivate(slot);
                        done.push(slot as u32);
                    }
                    continue;
                }
                // Checked decrement: a slot re-seen after its wrap
                // completed (stale member stamp on a re-dispatched page)
                // must not wrap the budget and resurrect the slot.
                match self.emit_left[slot]
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |left| left.checked_sub(1))
                {
                    Ok(1) => {
                        // This decrement consumed the last page: exactly
                        // one recorder observes the 1→0 edge, so the
                        // completion below fires once.
                        self.deactivate(slot);
                        done.push(slot as u32);
                    }
                    Ok(_) => {}
                    Err(_) => {
                        debug_assert!(
                            false,
                            "emit_left underflow: slot {slot} re-seen after its wrap completed"
                        );
                    }
                }
            }
        }
        done
    }

    /// Clear `slot`'s active bit (`Release`: the completing decrement
    /// happens-before a scan that no longer stamps the slot).
    fn deactivate(&self, slot: usize) {
        self.active[slot / 64]
            .fetch_update(Ordering::Release, Ordering::Relaxed, |w| {
                Some(w & !(1u64 << (slot % 64)))
            })
            .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(slots: &[usize], capacity: usize) -> QueryBitmap {
        let mut b = QueryBitmap::zeros(capacity);
        for &s in slots {
            b.set(s);
        }
        b
    }

    #[test]
    fn budget_counts_down_and_completes_once() {
        let ledger = WrapLedger::new(64);
        ledger.activate(3, 2);
        assert!(ledger.any() && ledger.is_active(3));
        let m = members(&[3], 64);
        assert!(ledger.record_page(&m).is_empty(), "one page left");
        assert_eq!(ledger.emit_left(3), 1);
        assert_eq!(ledger.record_page(&m), vec![3], "second page completes");
        assert!(!ledger.is_active(3) && !ledger.any());
    }

    #[test]
    fn non_members_are_untouched() {
        let ledger = WrapLedger::new(64);
        ledger.activate(0, 1);
        ledger.activate(9, 5);
        assert_eq!(ledger.record_page(&members(&[0], 64)), vec![0]);
        assert_eq!(ledger.emit_left(9), 5);
        assert!(ledger.is_active(9));
    }

    #[test]
    fn slots_recycle_with_fresh_budgets() {
        let ledger = WrapLedger::new(64);
        ledger.activate(1, 1);
        assert_eq!(ledger.record_page(&members(&[1], 64)), vec![1]);
        ledger.activate(1, 3);
        assert!(ledger.is_active(1));
        assert_eq!(ledger.emit_left(1), 3, "reuse starts from the new budget");
    }

    #[test]
    fn capacity_rounds_to_words() {
        assert_eq!(WrapLedger::new(1).capacity(), 64);
        assert_eq!(WrapLedger::new(65).capacity(), 128);
        let ledger = WrapLedger::new(256);
        ledger.activate(200, 1);
        assert_eq!(ledger.record_page(&members(&[200], 256)), vec![200]);
    }
}
