//! Executable spec of the admission **publication discipline**: filter
//! entries first, activation second.
//!
//! The staged admission paths (`admission.rs`, per-stage pool and
//! fabric alike) merge a pending query's staged [`DimEntry`] inserts into
//! the stage's live filters under one state write, and only *then* activate
//! the query (`activate_batch`). The distributor joins concurrently
//! throughout: it ANDs a fact row's filter-entry bits with the active-query
//! set, so the discipline is what guarantees an active query never misses a
//! dimension row its predicate selected — activation-before-publish would
//! let an in-flight fact page observe the query active while its filter
//! entries are still staged, silently dropping its joins.
//!
//! The production state (`crate::filter`) carries rows, payload bindings
//! and per-filter hash tables; this module is the same locking discipline
//! over the minimal state (slot masks keyed by join key) so the
//! deterministic interleaving checker (`tests/interleave_core.rs`) can race
//! admission against a probing reader exhaustively, including the
//! `PublishMutation::ActivateBeforePublish` mutation the discipline
//! exists to rule out. `admission.rs` cross-references this module at its
//! merge and activation sites.
//!
//! This spec models the discipline over a *locked* state — the seed
//! design. Production now carries the same discipline over the lock-free
//! epoch machinery: the merge is an atomic one-pointer epoch swap
//! ([`crate::epoch::EpochCell::publish`]) and activation is a `Release`
//! bit-set in the wrap ledger ([`crate::wrap::WrapLedger::activate`]);
//! [`crate::epoch::EpochFilterSpec`] is the lock-free twin of this spec,
//! with its own mutations (`TornSwap`, `ActivateBeforePublish`). Both are
//! kept checked: the ordering obligation is the same, the mechanism
//! differs.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build swaps
//! the lock for the model-checked shim.
//!
//! [`DimEntry`]: crate::DimEntry

use workshare_common::fxhash::FxHashMap;
use workshare_common::sync::RwLock;

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishMutation {
    /// The faithful discipline.
    #[default]
    None,
    /// Activate the query *before* publishing its filter entries: a
    /// concurrent probe can observe the query active with its entries
    /// still unpublished and drop its joins.
    ActivateBeforePublish,
}

struct SpecState {
    /// Filter-entry slot masks by join key (the spec's `DimEntry.bits`).
    entries: FxHashMap<i64, u64>,
    /// Active-query slot mask (the spec's activated sinks).
    active: u64,
}

/// Minimal shared filter state under the production locking discipline.
/// All methods take `&self`; share it behind the stage's `Arc`.
pub struct FilterSpec {
    state: RwLock<SpecState>,
    #[cfg(interleave)]
    mutation: PublishMutation,
}

impl FilterSpec {
    /// Empty filter state, no queries active.
    pub fn new() -> Self {
        FilterSpec {
            state: RwLock::new(SpecState {
                entries: FxHashMap::default(),
                active: 0,
            }),
            #[cfg(interleave)]
            mutation: PublishMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`PublishMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: PublishMutation) -> Self {
        FilterSpec {
            state: RwLock::new(SpecState {
                entries: FxHashMap::default(),
                active: 0,
            }),
            mutation,
        }
    }

    /// Admit `slot`: publish its selected `keys` into the filter (one state
    /// write, the staged-insert merge), then activate it (a second state
    /// write, `activate_batch`). The two writes are deliberately separate
    /// lock acquisitions, as in production — the discipline under check is
    /// their *order*, not their atomicity.
    pub fn admit(&self, slot: u32, keys: &[i64]) {
        #[cfg(interleave)]
        if self.mutation == PublishMutation::ActivateBeforePublish {
            self.state.write().active |= 1 << slot;
            let mut s = self.state.write();
            for &k in keys {
                *s.entries.entry(k).or_insert(0) |= 1 << slot;
            }
            return;
        }
        {
            let mut s = self.state.write();
            for &k in keys {
                *s.entries.entry(k).or_insert(0) |= 1 << slot;
            }
        }
        self.state.write().active |= 1 << slot;
    }

    /// The distributor's probe: the slot mask a fact row with join key
    /// `key` joins against — entry bits ANDed with the active set, under
    /// one read lock (the production distributor holds the state read lock
    /// across a page).
    pub fn probe(&self, key: i64) -> u64 {
        let s = self.state.read();
        s.entries.get(&key).copied().unwrap_or(0) & s.active
    }

    /// Whether `slot` is active (visible to the distributor).
    pub fn is_active(&self, slot: u32) -> bool {
        self.state.read().active & (1 << slot) != 0
    }

    /// Probe `key` *conditioned on* `slot` being active, in one read lock:
    /// `None` while the slot is inactive, otherwise whether the entry
    /// carries the slot's bit. This is the checker's detector — under the
    /// faithful discipline an active slot's selected keys are always
    /// present.
    pub fn probe_if_active(&self, slot: u32, key: i64) -> Option<bool> {
        let s = self.state.read();
        if s.active & (1 << slot) == 0 {
            return None;
        }
        Some(s.entries.get(&key).copied().unwrap_or(0) & (1 << slot) != 0)
    }
}

impl Default for FilterSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_slot_never_joins() {
        let f = FilterSpec::new();
        assert_eq!(f.probe(5), 0);
        assert_eq!(f.probe_if_active(0, 5), None);
    }

    #[test]
    fn admitted_slot_joins_its_keys() {
        let f = FilterSpec::new();
        f.admit(3, &[10, 20]);
        assert!(f.is_active(3));
        assert_eq!(f.probe(10), 1 << 3);
        assert_eq!(f.probe(20), 1 << 3);
        assert_eq!(f.probe(30), 0, "unselected key");
        assert_eq!(f.probe_if_active(3, 10), Some(true));
    }

    #[test]
    fn slots_overlap_on_shared_keys() {
        let f = FilterSpec::new();
        f.admit(0, &[7]);
        f.admit(1, &[7, 8]);
        assert_eq!(f.probe(7), 0b11);
        assert_eq!(f.probe(8), 0b10);
    }
}
