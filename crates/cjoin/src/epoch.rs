//! Epoch-published shared state: the lock-free publication protocol behind
//! the stage's filter state (`crate::stage`).
//!
//! An [`EpochCell`] holds the current immutable snapshot (an `Arc<T>`)
//! plus a version word. Writers build the next snapshot off-line and
//! publish it as **one pointer swap** (the slot replacement and the
//! version bump happen in a single critical section, so the pair is never
//! observed torn). Readers keep a cached `Arc` in an [`EpochReader`] and
//! pay exactly **one `Acquire` load** per probe at steady state — the
//! slot mutex is touched only on a version change, which on the stage
//! happens once per admission/finalize, not per page.
//!
//! Protocol invariants, checked by the model (`tests/interleave_core.rs`
//! drives [`EpochFilterSpec`], a minimal-state spec of the admission
//! publish in `admission.rs`/`stage.rs`):
//!
//! * **Publish is atomic.** Slot and version move together under one lock
//!   acquisition; a reader that refreshes therefore always caches a
//!   `(value, version)` pair that was current together. Splitting them —
//!   bumping the version in one critical section and swapping the value in
//!   another — lets a refresh cache the *new* version with the *old* value
//!   and never refresh again (the `EpochMutation::TornSwap` mutation,
//!   compiled only under `--cfg interleave`).
//! * **Entries-then-activate** (the discipline modeled lock-based in
//!   [`crate::publish`]): an admission publishes the epoch carrying a
//!   query's filter entries *before* it raises the query's active bit
//!   (`Release`). A probe gates on the active mask (`Acquire`) first, so
//!   observing the bit happens-after the entries epoch was published, and
//!   the reader's version probe is then guaranteed to trigger the refresh
//!   that covers those entries: a probe never observes an active slot
//!   whose keys are missing. Raising the bit first is the
//!   `EpochMutation::ActivateBeforePublish` mutation.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build
//! swaps the primitives for the model-checked shim.

use workshare_common::fxhash::FxHashMap;
use workshare_common::sync::{Arc, AtomicU64, Mutex, Ordering};

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Publish with the version bump and the value swap in two separate
    /// critical sections: a reader refreshing between them caches the new
    /// version with the stale value and never refreshes again.
    TornSwap,
    /// Raise the active bit before publishing the entries epoch: a probe
    /// can observe an active slot whose keys are missing.
    ActivateBeforePublish,
}

/// A published, versioned snapshot. See the module docs for the protocol.
pub struct EpochCell<T> {
    /// Bumped (`Release`) in the same critical section that replaces the
    /// slot, paired with the reader's `Acquire` probe in
    /// [`EpochReader::current`]: an observed version implies the slot
    /// holding (at least) that version's value is visible.
    version: AtomicU64,
    slot: Mutex<Arc<T>>,
    #[cfg(interleave)]
    mutation: EpochMutation,
}

impl<T> EpochCell<T> {
    /// Cell holding `initial` as epoch 0.
    pub fn new(initial: T) -> EpochCell<T> {
        EpochCell {
            version: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
            #[cfg(interleave)]
            mutation: EpochMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`EpochMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(initial: T, mutation: EpochMutation) -> EpochCell<T> {
        EpochCell {
            version: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
            mutation,
        }
    }

    /// Publish `next` as the new epoch: one pointer swap. The version bump
    /// and the slot replacement share a single critical section so no
    /// refresh can pair a version with the wrong value; the bump is
    /// `Release` so everything the writer built into `next`
    /// happens-before a reader that observes the new version.
    ///
    /// Writers that derive `next` from the current epoch (read-copy-
    /// publish) must serialize among themselves — on the stage that is the
    /// control mutex (`StageInner::mutate_epoch`) — or concurrent copies
    /// would lose each other's updates. Readers are never blocked by that:
    /// they only touch the slot lock for the duration of an `Arc` clone.
    pub fn publish(&self, next: Arc<T>) {
        #[cfg(interleave)]
        if self.mutation == EpochMutation::TornSwap {
            // Torn: version first, value later, in separate critical
            // sections — the bug this protocol exists to exclude.
            {
                let _slot = self.slot.lock();
                self.version.fetch_add(1, Ordering::Release);
            }
            *self.slot.lock() = next;
            return;
        }
        let mut slot = self.slot.lock();
        *slot = next;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The current epoch's value (cold path: takes the slot lock for one
    /// `Arc` clone). Hot paths hold an [`EpochReader`] instead.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&*self.slot.lock())
    }

    /// The current version (`Acquire`).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// A reader caching the current epoch.
    pub fn reader(&self) -> EpochReader<T> {
        let slot = self.slot.lock();
        EpochReader {
            cached: Arc::clone(&slot),
            version: self.version.load(Ordering::Acquire),
        }
    }
}

/// A per-thread cached view of an [`EpochCell`]: the steady-state probe is
/// one `Acquire` version load; the slot lock is taken only when the
/// version moved.
pub struct EpochReader<T> {
    cached: Arc<T>,
    version: u64,
}

impl<T> EpochReader<T> {
    /// The freshest epoch this reader can see. `Acquire` on the version
    /// probe pairs with the publisher's `Release` bump: an observed bump
    /// forces the refresh, and the refresh re-reads the version inside the
    /// slot critical section so the cached pair is always consistent.
    pub fn current(&mut self, cell: &EpochCell<T>) -> &Arc<T> {
        if cell.version.load(Ordering::Acquire) != self.version {
            let slot = cell.slot.lock();
            self.cached = Arc::clone(&slot);
            self.version = cell.version.load(Ordering::Acquire);
        }
        &self.cached
    }
}

/// Minimal-state spec of the stage's epoch-published filter state, driven
/// exhaustively by `tests/interleave_core.rs`: a key→member-mask map
/// published through an [`EpochCell`] plus an atomic active mask, with the
/// entries-then-activate discipline of `admission.rs` (the lock-based
/// model is [`crate::publish::FilterSpec`]). Production equivalents:
/// the map is `FilterEpoch`'s filter entries, the mask is the
/// `WrapLedger`'s active word, the writer mutex is the stage's control
/// mutex.
pub struct EpochFilterSpec {
    entries: EpochCell<FxHashMap<i64, u64>>,
    active: AtomicU64,
    /// Serializes read-copy-publish admissions (see [`EpochCell::publish`]).
    writer: Mutex<()>,
    #[cfg(interleave)]
    mutation: EpochMutation,
}

impl EpochFilterSpec {
    /// Empty filter state: no entries, no active slots.
    pub fn new() -> EpochFilterSpec {
        EpochFilterSpec {
            entries: EpochCell::new(FxHashMap::default()),
            active: AtomicU64::new(0),
            writer: Mutex::new(()),
            #[cfg(interleave)]
            mutation: EpochMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`EpochMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: EpochMutation) -> EpochFilterSpec {
        EpochFilterSpec {
            entries: EpochCell::with_mutation(FxHashMap::default(), mutation),
            active: AtomicU64::new(0),
            writer: Mutex::new(()),
            mutation,
        }
    }

    /// Admit `slot` selecting `keys`: publish the entries epoch, then
    /// raise the active bit (`Release`) — entries-then-activate.
    pub fn admit(&self, slot: u32, keys: &[i64]) {
        let bit = 1u64 << slot;
        let _writer = self.writer.lock();
        #[cfg(interleave)]
        if self.mutation == EpochMutation::ActivateBeforePublish {
            // Mutated: the slot goes live before its keys are published.
            self.active
                .fetch_update(Ordering::Release, Ordering::Relaxed, |m| Some(m | bit))
                .unwrap();
            let mut next = (*self.entries.load()).clone();
            for &k in keys {
                *next.entry(k).or_insert(0) |= bit;
            }
            self.entries.publish(Arc::new(next));
            return;
        }
        let mut next = (*self.entries.load()).clone();
        for &k in keys {
            *next.entry(k).or_insert(0) |= bit;
        }
        self.entries.publish(Arc::new(next));
        self.active
            .fetch_update(Ordering::Release, Ordering::Relaxed, |m| Some(m | bit))
            .unwrap();
    }

    /// A cached reader for [`EpochFilterSpec::probe_if_active`].
    pub fn reader(&self) -> EpochReader<FxHashMap<i64, u64>> {
        self.entries.reader()
    }

    /// Probe `key` on behalf of `slot` if the slot is active: `None` while
    /// inactive, else whether the slot selects the key. `Acquire` on the
    /// mask pairs with `admit`'s `Release` bit-set: an observed bit
    /// happens-after the entries epoch was published, so the reader's
    /// version probe refreshes past it — an active slot's keys are never
    /// missing.
    pub fn probe_if_active(
        &self,
        reader: &mut EpochReader<FxHashMap<i64, u64>>,
        slot: u32,
        key: i64,
    ) -> Option<bool> {
        let bit = 1u64 << slot;
        if self.active.load(Ordering::Acquire) & bit == 0 {
            return None;
        }
        let map = reader.current(&self.entries);
        Some(map.get(&key).is_some_and(|m| m & bit != 0))
    }
}

impl Default for EpochFilterSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_advances_version_and_value() {
        let cell = EpochCell::new(1u32);
        assert_eq!(cell.version(), 0);
        let mut reader = cell.reader();
        assert_eq!(**reader.current(&cell), 1);
        cell.publish(Arc::new(2));
        assert_eq!(cell.version(), 1);
        assert_eq!(**reader.current(&cell), 2, "reader refreshes on a bump");
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn reader_caches_between_publishes() {
        let cell = EpochCell::new(7u32);
        let mut reader = cell.reader();
        let a = Arc::clone(reader.current(&cell));
        let b = Arc::clone(reader.current(&cell));
        assert!(Arc::ptr_eq(&a, &b), "no refresh without a version change");
    }

    #[test]
    fn spec_gates_probes_on_activation() {
        let spec = EpochFilterSpec::new();
        let mut r = spec.reader();
        assert_eq!(spec.probe_if_active(&mut r, 0, 10), None, "inactive");
        spec.admit(0, &[10]);
        assert_eq!(spec.probe_if_active(&mut r, 0, 10), Some(true));
        assert_eq!(spec.probe_if_active(&mut r, 0, 11), Some(false));
        spec.admit(1, &[11]);
        assert_eq!(spec.probe_if_active(&mut r, 1, 11), Some(true));
        assert_eq!(spec.probe_if_active(&mut r, 0, 10), Some(true), "old entries survive");
    }
}
