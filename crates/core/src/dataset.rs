//! Datasets: generate once, instantiate per experiment run.
//!
//! Data generation is the most expensive real-time step of an experiment
//! sweep, so generated pages (which are `Arc`-backed and cheap to clone) are
//! kept in a [`Dataset`] and mounted into a fresh [`StorageManager`] —
//! equivalent to "clearing the caches" between measurements — for every run.

use workshare_common::codec::Page;
use workshare_common::{CostModel, Schema};
use workshare_datagen::{
    gen_customer, gen_date_table, gen_lineitem, gen_lineorder, gen_part, gen_supplier,
    SsbScale,
};
use workshare_storage::{StorageConfig, StorageManager};

/// A generated database: named tables with their schemas and pages.
pub struct Dataset {
    tables: Vec<(String, Schema, Vec<Page>)>,
    /// Scale the dataset was generated at.
    pub scale: f64,
}

impl Dataset {
    /// Generate the five SSB tables at `scale` (our 1/100-row scale).
    pub fn ssb(scale: f64, seed: u64) -> Dataset {
        let s = SsbScale::new(scale);
        let (ds, dp, _) = gen_date_table();
        let (cs, cp, _) = gen_customer(s, seed);
        let (ss, sp, _) = gen_supplier(s, seed);
        let (ps, pp, _) = gen_part(s, seed);
        let (ls, lp, _) = gen_lineorder(s, seed);
        Dataset {
            tables: vec![
                ("date".into(), ds, dp),
                ("customer".into(), cs, cp),
                ("supplier".into(), ss, sp),
                ("part".into(), ps, pp),
                ("lineorder".into(), ls, lp),
            ],
            scale,
        }
    }

    /// SSB plus a **second fact table** `lineorder2` (same schema,
    /// independently drawn rows) sharing the four dimension tables — the
    /// multi-fact star schema of mixed dashboards, used by the sharded
    /// CJOIN stage tests and the `multifact` bench.
    pub fn ssb_two_facts(scale: f64, seed: u64) -> Dataset {
        let mut d = Dataset::ssb(scale, seed);
        let (ls2, lp2, _) = gen_lineorder(SsbScale::new(scale), seed ^ 0x5eed_2fac);
        d.tables.push(("lineorder2".into(), ls2, lp2));
        d
    }

    /// Generate the TPC-H `lineitem` table at `scale`.
    pub fn tpch(scale: f64, seed: u64) -> Dataset {
        let s = SsbScale::new(scale);
        let (ls, lp, _) = gen_lineitem(s, seed);
        Dataset {
            tables: vec![("lineitem".into(), ls, lp)],
            scale,
        }
    }

    /// Names of the contained tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Total pages across all tables.
    pub fn total_pages(&self) -> usize {
        self.tables.iter().map(|(_, _, p)| p.len()).sum()
    }

    /// Total encoded bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables
            .iter()
            .flat_map(|(_, _, p)| p.iter())
            .map(|p| p.byte_len() as u64)
            .sum()
    }

    /// Mount the dataset into a fresh storage manager (cold caches).
    pub fn instantiate(&self, config: StorageConfig, cost: CostModel) -> StorageManager {
        let sm = StorageManager::new(config, cost);
        for (name, schema, pages) in &self.tables {
            sm.create_table(name, schema.clone(), pages.clone());
        }
        sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_storage::IoMode;

    #[test]
    fn ssb_dataset_has_all_tables() {
        let d = Dataset::ssb(0.05, 1);
        let names = d.table_names();
        for t in ["date", "customer", "supplier", "part", "lineorder"] {
            assert!(names.contains(&t), "{t} missing");
        }
        assert!(d.total_pages() > 0);
        assert!(d.total_bytes() > 0);
    }

    #[test]
    fn instantiate_mounts_everything() {
        let d = Dataset::ssb(0.05, 1);
        let sm = d.instantiate(
            StorageConfig {
                io_mode: IoMode::Memory,
                ..Default::default()
            },
            CostModel::default(),
        );
        assert!(sm.row_count(sm.table("lineorder")) >= 100);
        // Instantiating twice gives independent registries.
        let sm2 = d.instantiate(StorageConfig::default(), CostModel::default());
        assert_eq!(
            sm.row_count(sm.table("customer")),
            sm2.row_count(sm2.table("customer"))
        );
    }

    #[test]
    fn tpch_dataset_contains_lineitem() {
        let d = Dataset::tpch(0.05, 1);
        assert_eq!(d.table_names(), vec!["lineitem"]);
    }

    #[test]
    fn two_fact_dataset_adds_an_independent_lineorder2() {
        let d = Dataset::ssb_two_facts(0.05, 1);
        assert!(d.table_names().contains(&"lineorder2"));
        let sm = d.instantiate(StorageConfig::default(), CostModel::default());
        let lo = sm.table("lineorder");
        let lo2 = sm.table("lineorder2");
        assert_ne!(lo, lo2);
        // Same scale, same schema, independent draw.
        assert_eq!(sm.row_count(lo), sm.row_count(lo2));
        assert_eq!(sm.schema(lo).col("lo_custkey"), sm.schema(lo2).col("lo_custkey"));
    }
}
