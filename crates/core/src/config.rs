//! Engine configurations matching the paper's §5.1 experimental matrix.

use workshare_cjoin::{CjoinConfig, CjoinFaultPlan};
use workshare_common::CostModel;
use workshare_qpipe::{ExchangeKind, QpipeConfig};
use workshare_sim::{DiskConfig, MachineConfig};
use workshare_storage::{IoMode, StorageConfig, StorageFaultPlan};

use crate::governor::GovernorConfig;

/// How submissions are routed between the query-centric and shared
/// execution paths. `None` in [`RunConfig::policy`] keeps the legacy
/// behavior: the single engine named by [`RunConfig::engine`] runs every
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// Route every submission to a private Volcano-style plan.
    QueryCentric,
    /// Route every submission to the shared path: the CJOIN star stage for
    /// star queries on the engine's fact table, the sharing-enabled QPipe
    /// engine otherwise.
    Shared,
    /// Cost-driven per-submission routing with hysteresis
    /// ([`SharingGovernor`](crate::governor::SharingGovernor)).
    Adaptive,
}

impl ExecPolicy {
    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecPolicy::QueryCentric => "Gov-QC",
            ExecPolicy::Shared => "Gov-Shared",
            ExecPolicy::Adaptive => "Adaptive",
        }
    }
}

/// The named configurations evaluated throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedConfig {
    /// Query-centric staged engine, no sharing (baseline).
    Qpipe,
    /// + circular scans (SP at the table-scan stage only).
    QpipeCs,
    /// + SP at the join stage.
    QpipeSp,
    /// Global Query Plan with shared hash-joins (CJOIN as a QPipe stage).
    Cjoin,
    /// + SP over identical CJOIN packets.
    CjoinSp,
    /// Tuple-at-a-time query-centric iterator engine (the Postgres
    /// substitute of Fig. 16; see DESIGN.md §2).
    Volcano,
}

impl NamedConfig {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            NamedConfig::Qpipe => "QPipe",
            NamedConfig::QpipeCs => "QPipe-CS",
            NamedConfig::QpipeSp => "QPipe-SP",
            NamedConfig::Cjoin => "CJOIN",
            NamedConfig::CjoinSp => "CJOIN-SP",
            NamedConfig::Volcano => "Postgres*",
        }
    }

    /// All configurations, in the paper's order.
    pub fn all() -> [NamedConfig; 6] {
        [
            NamedConfig::Qpipe,
            NamedConfig::QpipeCs,
            NamedConfig::QpipeSp,
            NamedConfig::Cjoin,
            NamedConfig::CjoinSp,
            NamedConfig::Volcano,
        ]
    }
}

/// Maximum distinct tenants the service layer tracks. Fixed so
/// [`ServiceConfig`] (and therefore [`RunConfig`]) stays `Copy`.
pub const MAX_TENANTS: usize = 8;

/// Overload-control knobs for the closed-loop service driver. The default
/// is **fully off**: no queue cap, no deadline, no SLO target — every
/// submission is admitted exactly as before, preserving the legacy
/// behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Cap on queries concurrently admitted into the governed engine
    /// (in flight anywhere: fabric pending, stage pending, or executing).
    /// `None` = unbounded (legacy). When the cap is hit, submissions are
    /// shed with [`ShedReason::QueueFull`](crate::ShedReason::QueueFull)
    /// instead of queueing forever.
    pub queue_cap: Option<usize>,
    /// Per-query virtual deadline in seconds, measured from submission.
    /// `None` = no deadline. With a deadline set, submissions whose
    /// predicted completion (cost model over live sharing signals) already
    /// exceeds it are shed with
    /// [`ShedReason::Deadline`](crate::ShedReason::Deadline), and the
    /// governor switches to SLO mode: prefer the route predicted to meet
    /// the deadline, shed only when neither can.
    pub deadline_secs: Option<f64>,
    /// Target p99 latency in seconds reported against by the `overload`
    /// bench. Purely an observability/gating knob — shedding is driven by
    /// `deadline_secs`.
    pub slo_p99_secs: Option<f64>,
    /// Relative admission weight per tenant (tenant id = index, queries
    /// from tenants ≥ [`MAX_TENANTS`] fold onto the last slot). All-zero
    /// (the default) disables per-tenant partitioning: every tenant may
    /// use the whole queue cap. With any weight set, each tenant `t` may
    /// hold at most `ceil(queue_cap · w_t / Σw)` of the in-flight slots,
    /// so heavy tenants cannot starve light ones, and zero-weight tenants
    /// are locked out.
    pub tenant_weights: [f64; MAX_TENANTS],
    /// Deprecated alias for
    /// [`FaultPlan::worker_panic_stride`](FaultPlan::worker_panic_stride):
    /// panic inside the producer vthread of every query whose id is a
    /// multiple of the stride, *after* admission (the completion guard and
    /// permit drop must turn the panic into an error outcome that still
    /// balances
    /// [`ThroughputReport::is_conserved`](crate::ThroughputReport::is_conserved)).
    /// `None` (the default) injects nothing. Kept so existing tests pass
    /// unchanged; new code should set the stride on
    /// [`RunConfig::faults`](RunConfig::faults) instead.
    #[doc(hidden)]
    pub fault_panic_stride: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_cap: None,
            deadline_secs: None,
            slo_p99_secs: None,
            tenant_weights: [0.0; MAX_TENANTS],
            fault_panic_stride: None,
        }
    }
}

impl ServiceConfig {
    /// Whether any overload control is active. False = legacy behavior.
    pub fn is_active(&self) -> bool {
        self.queue_cap.is_some() || self.deadline_secs.is_some()
    }

    /// The admission weight of `tenant` (ids beyond the table fold onto
    /// the last slot; non-positive weights count as zero).
    pub fn weight(&self, tenant: usize) -> f64 {
        self.tenant_weights[tenant.min(MAX_TENANTS - 1)].max(0.0)
    }

    /// Per-tenant share of the queue cap: `ceil(cap · w_t / Σw)`, at least
    /// 1 for any tenant with positive weight. `None` when no cap is set;
    /// the whole cap when no weights are set (per-tenant partitioning
    /// off).
    pub fn tenant_cap(&self, tenant: usize) -> Option<usize> {
        let cap = self.queue_cap?;
        let total: f64 = (0..MAX_TENANTS).map(|t| self.weight(t)).sum();
        if total <= 0.0 {
            return Some(cap);
        }
        let w = self.weight(tenant);
        if w <= 0.0 {
            return Some(0);
        }
        let share = (cap as f64 * w / total).ceil() as usize;
        Some(share.clamp(1, cap))
    }

    /// Deadline the governor's SLO mode routes against (`deadline_secs`,
    /// falling back to the p99 target when only that is set).
    pub fn slo_target_secs(&self) -> Option<f64> {
        self.deadline_secs.or(self.slo_p99_secs)
    }
}

/// The seeded, deterministic fault-injection schedule, threaded from
/// [`RunConfig::faults`] into every layer's fault sites. The default is
/// **fully off**: no site fires, no recovery machinery is built, and the
/// engine behaves bit-for-bit as before.
///
/// Sites (see `docs/FAULTS.md` for the full table):
///
/// * storage — transient page-read errors (recovered by bounded retry with
///   exponential backoff), permanent read errors (typed `StorageError`
///   after retries), torn pages (checksum verify + quarantine).
/// * cjoin admission — scan-unit stalls and panics; fabric-worker wedges.
/// * core engine — stage-build failures (quarantined and rebuilt through
///   the `LeaseRegistry` retired ledger) and mid-execution worker panics.
///
/// With any site armed the governed engine also arms the **self-healing**
/// machinery: the health monitor, the fabric's straggler re-dispatch, and
/// the fabric → pool → serial degradation ladder. Set
/// [`self_heal`](FaultPlan::self_heal) to `false` to measure the
/// no-recovery baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every site's fire schedule; a chaos failure replays
    /// from its seed.
    pub seed: u64,
    /// Every ~`stride`-th page read fails transiently.
    pub transient_page_stride: Option<u64>,
    /// Consecutive attempts a transient page fault poisons (the retry
    /// budget is 4 attempts, so the default 2 always recovers).
    pub transient_page_burst: u32,
    /// Every ~`stride`-th page read fails on every attempt.
    pub permanent_page_stride: Option<u64>,
    /// Every ~`stride`-th page read returns a torn page.
    pub torn_page_stride: Option<u64>,
    /// Every ~`stride`-th admission scan unit stalls past the fabric's
    /// re-dispatch deadline.
    pub scan_stall_stride: Option<u64>,
    /// Every ~`stride`-th admission scan unit panics.
    pub scan_panic_stride: Option<u64>,
    /// A fabric worker wedges (parks until shutdown) at its `n`-th window;
    /// fires once per fabric lifetime.
    pub fabric_wedge_after: Option<u64>,
    /// Every ~`stride`-th stage build fails; the engine quarantines the
    /// carcass through the lease registry's retired ledger and rebuilds.
    pub stage_build_stride: Option<u64>,
    /// Panic inside the producer vthread of every query whose id is a
    /// multiple of the stride (the PR 7 knob, folded in; the
    /// `ServiceConfig::fault_panic_stride` alias still works).
    pub worker_panic_stride: Option<u64>,
    /// Whether the recovery machinery runs (retry/backoff, re-dispatch,
    /// health monitor, ladder). `false` = no-recovery baseline: the first
    /// failure of each injected fault is final.
    pub self_heal: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            transient_page_stride: None,
            transient_page_burst: 2,
            permanent_page_stride: None,
            torn_page_stride: None,
            scan_stall_stride: None,
            scan_panic_stride: None,
            fabric_wedge_after: None,
            stage_build_stride: None,
            worker_panic_stride: None,
            self_heal: true,
        }
    }
}

impl FaultPlan {
    /// Whether any fault site is armed.
    pub fn is_armed(&self) -> bool {
        self.transient_page_stride.is_some()
            || self.permanent_page_stride.is_some()
            || self.torn_page_stride.is_some()
            || self.scan_stall_stride.is_some()
            || self.scan_panic_stride.is_some()
            || self.fabric_wedge_after.is_some()
            || self.stage_build_stride.is_some()
            || self.worker_panic_stride.is_some()
    }

    /// Whether the governed engine should build the self-healing machinery
    /// (health monitor, ladder, re-dispatch supervision).
    pub fn heals(&self) -> bool {
        self.is_armed() && self.self_heal
    }

    /// The storage layer's slice of the plan.
    pub fn storage_faults(&self) -> StorageFaultPlan {
        StorageFaultPlan {
            seed: self.seed,
            transient_stride: self.transient_page_stride,
            transient_burst: self.transient_page_burst,
            permanent_stride: self.permanent_page_stride,
            torn_stride: self.torn_page_stride,
            retry: self.self_heal,
        }
    }

    /// The cjoin admission layer's slice of the plan.
    pub fn cjoin_faults(&self) -> CjoinFaultPlan {
        CjoinFaultPlan {
            seed: self.seed,
            scan_stall_stride: self.scan_stall_stride,
            scan_panic_stride: self.scan_panic_stride,
            wedge_after_windows: self.fabric_wedge_after,
            ..CjoinFaultPlan::default()
        }
    }
}

/// Full run configuration: engine + machine + storage knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Which engine to run.
    pub engine: NamedConfig,
    /// Virtual cores (the paper's server has 24).
    pub cores: u32,
    /// Exchange implementation for SP (Fig. 6's FIFO vs SPL axis).
    pub exchange: ExchangeKind,
    /// Database residency / I/O mode.
    pub io_mode: IoMode,
    /// Buffer-pool capacity in pages (`None` = large default).
    pub buffer_pool_pages: Option<usize>,
    /// Enable whole-plan SP at the aggregation stage (off in the paper's
    /// experiments; available for the identical-query ablation).
    pub sp_aggs: bool,
    /// DataPath-style shared aggregation inside the CJOIN distributor
    /// (extension; see `workshare_cjoin::CjoinConfig::shared_aggregation`).
    pub cjoin_shared_agg: bool,
    /// Run CJOIN with the retained tuple-at-a-time filter kernel instead of
    /// the vectorized batch kernel (the property tests' reference path; see
    /// `workshare_cjoin::CjoinConfig::scalar_filter`).
    pub cjoin_scalar_filter: bool,
    /// Run CJOIN with the retained per-query **serial** admission path (the
    /// paper's §3.2 behavior: the preprocessor pauses the pipeline and
    /// scans every dimension once per pending query) instead of the
    /// shared-scan, pipeline-overlapped path. Behavioral oracle and
    /// `admission` bench baseline; see
    /// `workshare_cjoin::CjoinConfig::serial_admission`.
    pub cjoin_serial_admission: bool,
    /// Johnson et al. \[14\] run-time prediction model for scan sharing
    /// (only share once the machine saturates). Fig. 6 ablation.
    pub cs_prediction: bool,
    /// Cost model.
    pub cost: CostModel,
    /// Simulated disk parameters.
    pub disk: DiskConfig,
    /// Execution policy: `None` runs the single engine named by `engine`;
    /// `Some(_)` builds the governed engine (both paths) and routes per
    /// submission.
    pub policy: Option<ExecPolicy>,
    /// Shard the governed engine's shared path by fact table (default): a
    /// star query over *any* fact table enters a lazily-built CJOIN stage
    /// bound to that fact. Off = the legacy topology — one stage bound to
    /// the run's primary fact table, star queries over other facts fall
    /// back to QPipe-with-sharing (kept as the `multifact` bench baseline).
    pub multifact: bool,
    /// Serve CJOIN admission from one engine-level **cross-stage fabric**
    /// (default, governed engines only): every sharded stage hands its
    /// pending batches to a single worker pool that merges them per
    /// batching window and scans each distinct dimension table **once for
    /// all stages** — two fact tables' star queries filtering the same
    /// dimension share one physical scan. Off = each stage runs its own
    /// admission pool (`workshare_cjoin::CjoinConfig::n_admission_workers`,
    /// the `admission_fabric` bench baseline and the only mode for
    /// ungoverned / standalone stages). Ignored under
    /// [`cjoin_serial_admission`](RunConfig::cjoin_serial_admission), which
    /// admits inline on the preprocessor.
    pub admission_fabric: bool,
    /// Worker count of the engine-level admission fabric. Default 1: a
    /// single worker makes window merging maximal and deterministic (every
    /// burst shares one scan pass); raise it to overlap the dimension
    /// scans of *independent* admission windows on engines with many
    /// sharded fact stages, at the cost of best-effort merging.
    pub admission_fabric_workers: usize,
    /// Sharing-governor knobs (hysteresis, calibration EWMA), used when
    /// `policy` is [`ExecPolicy::Adaptive`].
    pub governor: GovernorConfig,
    /// Overload-control knobs (queue cap, deadline shedding, SLO target,
    /// tenant weights). Default **off**: legacy unbounded admission.
    pub service: ServiceConfig,
    /// Seeded fault-injection schedule plus the self-healing machinery it
    /// arms. Default **off**: legacy behavior bit-for-bit.
    pub faults: FaultPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            engine: NamedConfig::QpipeSp,
            cores: 24,
            exchange: ExchangeKind::Spl,
            io_mode: IoMode::Memory,
            buffer_pool_pages: None,
            sp_aggs: false,
            cjoin_shared_agg: false,
            cjoin_scalar_filter: false,
            cjoin_serial_admission: false,
            cs_prediction: false,
            cost: CostModel::default(),
            disk: DiskConfig::default(),
            policy: None,
            multifact: true,
            admission_fabric: true,
            admission_fabric_workers: 1,
            governor: GovernorConfig::default(),
            service: ServiceConfig::default(),
            faults: FaultPlan::default(),
        }
    }
}

impl RunConfig {
    /// Convenience constructor.
    pub fn named(engine: NamedConfig) -> RunConfig {
        RunConfig {
            engine,
            ..Default::default()
        }
    }

    /// Governed-engine constructor: both execution paths are built and
    /// `policy` routes each submission. The `engine` field still selects
    /// the shared side's parameters (CJOIN-SP defaults).
    pub fn governed(policy: ExecPolicy) -> RunConfig {
        RunConfig {
            engine: NamedConfig::CjoinSp,
            policy: Some(policy),
            ..Default::default()
        }
    }

    /// Display label: the policy's when governed, the engine's otherwise.
    pub fn label(&self) -> &'static str {
        match self.policy {
            Some(p) => p.label(),
            None => self.engine.label(),
        }
    }

    /// QPipe parameters of the governed engine's shared path: circular
    /// scans and SP on, regardless of the named engine (sharing is what the
    /// shared route is *for*).
    pub fn governed_qpipe_config(&self) -> QpipeConfig {
        QpipeConfig {
            exchange: self.exchange,
            circular_scans: true,
            sp_joins: true,
            sp_aggs: self.sp_aggs,
            cs_prediction: false,
            cap_pages: 8,
        }
    }

    /// Machine parameters implied by this configuration.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            cores: self.cores,
            disk: self.disk,
        }
    }

    /// Storage parameters implied by this configuration.
    pub fn storage_config(&self) -> StorageConfig {
        let mut sc = StorageConfig {
            io_mode: self.io_mode,
            faults: self.faults.storage_faults(),
            ..Default::default()
        };
        if let Some(p) = self.buffer_pool_pages {
            sc.buffer_pool_pages = p;
        }
        sc
    }

    /// QPipe engine parameters implied by this configuration
    /// (meaningful for the three QPipe variants).
    pub fn qpipe_config(&self) -> QpipeConfig {
        let (cs, sp) = match self.engine {
            NamedConfig::Qpipe => (false, false),
            NamedConfig::QpipeCs => (true, false),
            NamedConfig::QpipeSp => (true, true),
            _ => (false, false),
        };
        QpipeConfig {
            exchange: self.exchange,
            circular_scans: cs,
            sp_joins: sp,
            sp_aggs: self.sp_aggs,
            cs_prediction: self.cs_prediction,
            cap_pages: 8,
        }
    }

    /// CJOIN stage parameters implied by this configuration.
    pub fn cjoin_config(&self) -> CjoinConfig {
        CjoinConfig {
            exchange: self.exchange,
            sp: self.engine == NamedConfig::CjoinSp,
            shared_aggregation: self.cjoin_shared_agg,
            scalar_filter: self.cjoin_scalar_filter,
            serial_admission: self.cjoin_serial_admission,
            faults: self.faults.cjoin_faults(),
            ..Default::default()
        }
    }

    /// Effective mid-execution worker-panic stride: the fault plan's site,
    /// with the deprecated `ServiceConfig::fault_panic_stride` alias.
    pub fn worker_panic_stride(&self) -> Option<u64> {
        self.faults.worker_panic_stride.or(self.service.fault_panic_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in NamedConfig::all() {
            assert!(seen.insert(c.label()));
        }
    }

    #[test]
    fn qpipe_variants_map_to_sharing_flags() {
        let q = RunConfig::named(NamedConfig::Qpipe).qpipe_config();
        assert!(!q.circular_scans && !q.sp_joins);
        let cs = RunConfig::named(NamedConfig::QpipeCs).qpipe_config();
        assert!(cs.circular_scans && !cs.sp_joins);
        let sp = RunConfig::named(NamedConfig::QpipeSp).qpipe_config();
        assert!(sp.circular_scans && sp.sp_joins);
    }

    #[test]
    fn cjoin_sp_flag_follows_engine() {
        assert!(!RunConfig::named(NamedConfig::Cjoin).cjoin_config().sp);
        assert!(RunConfig::named(NamedConfig::CjoinSp).cjoin_config().sp);
    }

    #[test]
    fn governed_configs_label_by_policy() {
        let rc = RunConfig::governed(ExecPolicy::Adaptive);
        assert_eq!(rc.policy, Some(ExecPolicy::Adaptive));
        // Sharded multi-fact stages are the default shared topology.
        assert!(rc.multifact);
        assert_eq!(rc.label(), "Adaptive");
        assert_eq!(RunConfig::governed(ExecPolicy::QueryCentric).label(), "Gov-QC");
        assert_eq!(RunConfig::governed(ExecPolicy::Shared).label(), "Gov-Shared");
        // Ungoverned configs keep the engine's label.
        assert_eq!(RunConfig::named(NamedConfig::Cjoin).label(), "CJOIN");
        // The governed shared path always has its sharing hooks on.
        let qp = rc.governed_qpipe_config();
        assert!(qp.circular_scans && qp.sp_joins);
    }

    #[test]
    fn admission_fabric_defaults_on_for_governed_engines() {
        let rc = RunConfig::governed(ExecPolicy::Shared);
        assert!(rc.admission_fabric, "fabric is the governed default");
        assert_eq!(rc.admission_fabric_workers, 1, "doc'd default");
        // The per-stage fallback pool keeps its knob for standalone stages.
        assert_eq!(rc.cjoin_config().n_admission_workers, 1);
    }

    #[test]
    fn service_config_defaults_off() {
        let rc = RunConfig::default();
        assert!(!rc.service.is_active(), "overload control must default off");
        assert_eq!(rc.service.queue_cap, None);
        assert_eq!(rc.service.deadline_secs, None);
        assert_eq!(rc.service.tenant_cap(0), None, "no cap without queue_cap");
        assert_eq!(rc.service.slo_target_secs(), None);
    }

    #[test]
    fn tenant_caps_follow_weights() {
        let mut sc = ServiceConfig {
            queue_cap: Some(8),
            ..Default::default()
        };
        // No weights set: per-tenant partitioning is off, every tenant may
        // use the whole cap.
        assert_eq!(sc.tenant_cap(0), Some(8));
        // Equal weights: every tenant gets ceil(8/8) = 1.
        sc.tenant_weights = [1.0; MAX_TENANTS];
        assert_eq!(sc.tenant_cap(0), Some(1));
        assert_eq!(sc.tenant_cap(MAX_TENANTS + 5), Some(1), "ids fold onto last slot");
        // A heavy tenant gets the lion's share, light ones keep ≥ 1.
        sc.tenant_weights = [9.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(sc.tenant_cap(0), Some(5)); // ceil(8·9/16)
        assert_eq!(sc.tenant_cap(1), Some(1)); // ceil(8·1/16) = 1
        // Zero weight admits nothing; deadline falls back to the p99 target.
        sc.tenant_weights[2] = 0.0;
        assert_eq!(sc.tenant_cap(2), Some(0));
        sc.slo_p99_secs = Some(0.5);
        assert_eq!(sc.slo_target_secs(), Some(0.5));
        sc.deadline_secs = Some(0.2);
        assert_eq!(sc.slo_target_secs(), Some(0.2));
        assert!(sc.is_active());
    }

    #[test]
    fn fault_plan_defaults_off() {
        let rc = RunConfig::default();
        assert!(!rc.faults.is_armed(), "fault injection must default off");
        assert!(!rc.faults.heals(), "no machinery without armed sites");
        assert!(!rc.storage_config().faults.is_armed());
        assert!(!rc.cjoin_config().faults.is_armed());
        assert_eq!(rc.worker_panic_stride(), None);
    }

    #[test]
    fn fault_plan_threads_into_layer_configs() {
        let mut rc = RunConfig::governed(ExecPolicy::Shared);
        rc.faults = FaultPlan {
            seed: 42,
            transient_page_stride: Some(5),
            torn_page_stride: Some(9),
            scan_stall_stride: Some(7),
            fabric_wedge_after: Some(3),
            ..Default::default()
        };
        let sf = rc.storage_config().faults;
        assert_eq!(sf.seed, 42);
        assert_eq!(sf.transient_stride, Some(5));
        assert_eq!(sf.torn_stride, Some(9));
        assert!(sf.retry, "self-heal arms the retry path");
        let cf = rc.cjoin_config().faults;
        assert_eq!(cf.seed, 42);
        assert_eq!(cf.scan_stall_stride, Some(7));
        assert_eq!(cf.wedge_after_windows, Some(3));
        assert!(rc.faults.heals());
        // The no-recovery baseline disables the retry machinery.
        rc.faults.self_heal = false;
        assert!(!rc.storage_config().faults.retry);
        assert!(!rc.faults.heals());
    }

    #[test]
    fn worker_panic_stride_folds_legacy_alias() {
        let mut rc = RunConfig::default();
        rc.service.fault_panic_stride = Some(3);
        assert_eq!(rc.worker_panic_stride(), Some(3), "deprecated alias");
        rc.faults.worker_panic_stride = Some(5);
        assert_eq!(rc.worker_panic_stride(), Some(5), "plan wins over alias");
    }

    #[test]
    fn storage_overrides_apply() {
        let mut rc = RunConfig::named(NamedConfig::Qpipe);
        rc.io_mode = IoMode::DirectDisk;
        rc.buffer_pool_pages = Some(128);
        let sc = rc.storage_config();
        assert_eq!(sc.io_mode, IoMode::DirectDisk);
        assert_eq!(sc.buffer_pool_pages, 128);
    }
}
