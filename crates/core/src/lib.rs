//! # workshare-core — public facade
//!
//! Ties the substrates together into the paper's five engine configurations
//! plus the Postgres-substitute baseline (§5.1):
//!
//! | Config      | Scans            | Joins                     | SP |
//! |-------------|------------------|---------------------------|----|
//! | `QPipe`     | independent      | query-centric             | —  |
//! | `QPipe-CS`  | circular (shared)| query-centric             | scans only |
//! | `QPipe-SP`  | circular         | query-centric             | scans + joins |
//! | `CJOIN`     | circular fact    | GQP shared hash-joins     | —  |
//! | `CJOIN-SP`  | circular fact    | GQP shared hash-joins     | CJOIN packets |
//! | `Volcano`   | independent      | query-centric, 1 thread   | —  |
//!
//! On top of the static configurations sits the **sharing governor**
//! ([`governor`]): with [`RunConfig::policy`] set to
//! [`ExecPolicy::Adaptive`], the engine builds *both* paths and routes each
//! submission between a private query-centric plan and the shared plan from
//! cost-model estimates parameterized by live signals (in-flight queries,
//! observed admission selectivity, filter key-run length), with hysteresis
//! so routes don't flap at the crossover. [`ExecPolicy::QueryCentric`] and
//! [`ExecPolicy::Shared`] pin the governed engine to one path (the bench
//! baselines).
//!
//! Entry points:
//!
//! * [`Dataset`] — generate SSB / TPC-H data once, instantiate per run.
//! * [`RunConfig`] / [`NamedConfig`] — select engine, cores, I/O mode.
//! * [`ExecPolicy`] / [`SharingGovernor`] — adaptive routing between
//!   query-centric and shared execution.
//! * [`Engine`] — submit [`StarQuery`]s, receive [`Ticket`]s.
//! * [`harness`] — batch & closed-loop client runs with paper-style reports.
//! * [`workload`] — SSB Q1.1 / Q2.1 / Q3.2 and TPC-H Q1 templates with
//!   similarity control.

pub mod cell;
pub mod config;
pub mod dataset;
pub mod engine;
pub mod governor;
pub mod harness;
pub mod health;
pub mod lease;
pub mod slots;
pub mod ticket;
pub mod volcano;
pub mod workload;

pub use config::{ExecPolicy, FaultPlan, NamedConfig, RunConfig, ServiceConfig, MAX_TENANTS};
pub use dataset::Dataset;
pub use engine::{Engine, Outcome, ShedReason, StageRow};
pub use governor::{GovernorConfig, GovernorStats, Route, SharingGovernor, SloDecision};
pub use harness::{
    run_batch, run_clients, run_service, run_staggered, RunReport, ServiceLoad, TenantCounts,
    ThroughputReport,
};
pub use health::HealthStats;
pub use ticket::Ticket;

pub use workshare_cjoin::{AdmissionHealthSnapshot, FabricStats, LadderRung};
pub use workshare_common::{CostModel, StarQuery};
pub use workshare_qpipe::ExchangeKind;
pub use workshare_storage::{IoMode, StorageError, StorageFaultStats};
