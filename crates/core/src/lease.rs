//! Lease-counted lazy registry: the checkout / release / teardown protocol
//! behind the engine's per-fact [`CjoinStage`](workshare_cjoin::CjoinStage)
//! registry, extracted so the deterministic interleaving checker
//! (`tests/interleave_core.rs`) can race checkout against teardown
//! exhaustively. The engine keeps its domain wrapper (`StageRegistry`) and
//! delegates the lifecycle to [`LeaseRegistry`].
//!
//! Protocol invariants, checked by the model:
//!
//! * An entry is torn down only when its lease refcount (`in_flight`)
//!   reaches zero, and its counters are absorbed into the retired ledger
//!   *before* shutdown — a report taken at any point observes every served
//!   query exactly once (live or retired, never neither).
//! * A checkout builds the value *outside* the registry lock (double-checked
//!   insert), so concurrent checkouts of other keys never stall behind a
//!   build; the loser of a racing duplicate build shuts its orphan down.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build swaps
//! the lock for the model-checked shim.

use std::hash::Hash;

use workshare_common::fxhash::FxHashMap;
use workshare_common::sync::Mutex;

/// A value whose lifecycle a [`LeaseRegistry`] manages.
pub trait Leased: Clone {
    /// Per-key ledger cell that outlives torn-down incarnations.
    type Retired: Default;

    /// Whether `self` and `other` are the same underlying instance (used to
    /// detect a lost duplicate-build race).
    fn same(&self, other: &Self) -> bool;

    /// Fold this incarnation's counters into the retired ledger cell.
    /// Called with the registry's retired lock held, before [`shutdown`]
    /// (so a report never misses counters mid-teardown).
    ///
    /// [`shutdown`]: Leased::shutdown
    fn retire_into(&self, served: u64, cell: &mut Self::Retired);

    /// Tear the instance down (idempotent, cooperative).
    fn shutdown(&self);
}

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
/// Each deliberately breaks one step of the lease lifecycle so the model
/// checker can prove it would catch the regression.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeaseMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Tear the entry down on *any* release, ignoring the lease refcount:
    /// a concurrent holder's instance is shut down under it, and its
    /// still-in-flight service disappears from both ledgers.
    TeardownWhileLeased,
    /// Skip the ledger absorb on teardown ("reordering the ledger absorb"
    /// bug class): served counts of retired incarnations vanish.
    AbsorbDropped,
}

/// A live entry: the leased value plus its lifecycle counters.
pub struct LeaseEntry<S> {
    /// The checked-out value.
    pub value: S,
    /// Outstanding leases — the teardown refcount.
    pub in_flight: u64,
    /// Checkouts served by this incarnation (folded into the retired
    /// ledger on teardown).
    pub served: u64,
}

/// Lease-counted registry of lazily built values, one per key. All methods
/// take `&self`; share it behind an `Arc`.
pub struct LeaseRegistry<K, S: Leased> {
    live: Mutex<FxHashMap<K, LeaseEntry<S>>>,
    retired: Mutex<FxHashMap<K, S::Retired>>,
    #[cfg(interleave)]
    mutation: LeaseMutation,
}

impl<K: Eq + Hash + Copy, S: Leased> LeaseRegistry<K, S> {
    /// Empty registry.
    pub fn new() -> Self {
        LeaseRegistry {
            live: Mutex::new(FxHashMap::default()),
            retired: Mutex::new(FxHashMap::default()),
            #[cfg(interleave)]
            mutation: LeaseMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`LeaseMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: LeaseMutation) -> Self {
        LeaseRegistry {
            live: Mutex::new(FxHashMap::default()),
            retired: Mutex::new(FxHashMap::default()),
            mutation,
        }
    }

    /// The value for `key`, built by `build` on first use; registers one
    /// lease on it. The value stays valid until the matching
    /// [`release`](LeaseRegistry::release) (entries are only torn down at
    /// refcount zero). `build` runs *outside* the registry lock
    /// (double-checked insert) so checkouts of other keys never stall
    /// behind it; a racing duplicate build loses the insert and is shut
    /// down.
    pub fn checkout(&self, key: K, build: impl FnOnce() -> S) -> S {
        {
            let mut live = self.live.lock();
            if let Some(entry) = live.get_mut(&key) {
                entry.in_flight += 1;
                entry.served += 1;
                return entry.value.clone();
            }
        }
        let built = build();
        let mut live = self.live.lock();
        let entry = live.entry(key).or_insert_with(|| LeaseEntry {
            value: built.clone(),
            in_flight: 0,
            served: 0,
        });
        entry.in_flight += 1;
        entry.served += 1;
        let value = entry.value.clone();
        drop(live);
        if !value.same(&built) {
            built.shutdown(); // lost the insert race
        }
        value
    }

    /// Drop one lease on `key`'s entry; tears it down when it was the last.
    /// The incarnation's counters are absorbed into the retired ledger
    /// *before* shutdown, so reports survive the churn.
    pub fn release(&self, key: K) {
        let mut live = self.live.lock();
        let Some(entry) = live.get_mut(&key) else {
            return;
        };
        entry.in_flight = entry.in_flight.saturating_sub(1);
        #[cfg(interleave)]
        let skip_refcount = self.mutation == LeaseMutation::TeardownWhileLeased;
        #[cfg(not(interleave))]
        let skip_refcount = false;
        if entry.in_flight > 0 && !skip_refcount {
            return;
        }
        let entry = live.remove(&key).expect("entry present");
        drop(live);
        #[cfg(interleave)]
        let absorb = self.mutation != LeaseMutation::AbsorbDropped;
        #[cfg(not(interleave))]
        let absorb = true;
        if absorb {
            let mut retired = self.retired.lock();
            let cell = retired.entry(key).or_default();
            entry.value.retire_into(entry.served, cell);
        }
        entry.value.shutdown();
    }

    /// Apply `f` to `key`'s live entry, if any (signals, per-key stats).
    pub fn with_live<R>(&self, key: K, f: impl FnOnce(&LeaseEntry<S>) -> R) -> Option<R> {
        self.live.lock().get(&key).map(f)
    }

    /// Apply `f` to `key`'s retired ledger cell, if any.
    pub fn with_retired<R>(&self, key: K, f: impl FnOnce(&S::Retired) -> R) -> Option<R> {
        self.retired.lock().get(&key).map(f)
    }

    /// Visit every live entry (aggregate stats, report rows).
    pub fn for_each_live(&self, mut f: impl FnMut(&K, &LeaseEntry<S>)) {
        for (k, e) in self.live.lock().iter() {
            f(k, e);
        }
    }

    /// Visit every retired ledger cell.
    pub fn for_each_retired(&self, mut f: impl FnMut(&K, &S::Retired)) {
        for (k, c) in self.retired.lock().iter() {
            f(k, c);
        }
    }

    /// Remove and return every live value without retiring it (engine
    /// shutdown: callers shut the values down themselves).
    pub fn drain_live(&self) -> Vec<S> {
        self.live
            .lock()
            .drain()
            .map(|(_, e)| e.value)
            .collect()
    }
}

impl<K: Eq + Hash + Copy, S: Leased> Default for LeaseRegistry<K, S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Clone)]
    struct FakeStage {
        id: usize,
        shut: Arc<AtomicBool>,
        work: Arc<AtomicU64>,
    }

    #[derive(Default)]
    struct FakeRetired {
        served: u64,
        work: u64,
    }

    impl Leased for FakeStage {
        type Retired = FakeRetired;
        fn same(&self, other: &Self) -> bool {
            self.id == other.id
        }
        fn retire_into(&self, served: u64, cell: &mut FakeRetired) {
            cell.served += served;
            cell.work += self.work.load(Ordering::Acquire);
        }
        fn shutdown(&self) {
            self.shut.store(true, Ordering::Release);
        }
    }

    fn build(id: usize) -> FakeStage {
        FakeStage {
            id,
            shut: Arc::new(AtomicBool::new(false)),
            work: Arc::new(AtomicU64::new(0)),
        }
    }

    #[test]
    fn checkout_builds_once_and_refcounts() {
        let reg: LeaseRegistry<u32, FakeStage> = LeaseRegistry::new();
        let a = reg.checkout(7, || build(1));
        let b = reg.checkout(7, || build(2));
        assert!(a.same(&b), "second checkout reuses the first build");
        assert_eq!(reg.with_live(7, |e| e.in_flight), Some(2));
        reg.release(7);
        assert!(!a.shut.load(Ordering::Acquire), "still one lease out");
        reg.release(7);
        assert!(a.shut.load(Ordering::Acquire), "last release tears down");
        assert_eq!(reg.with_retired(7, |c| c.served), Some(2));
    }

    #[test]
    fn counters_survive_teardown_into_the_retired_ledger() {
        let reg: LeaseRegistry<u32, FakeStage> = LeaseRegistry::new();
        let s = reg.checkout(1, || build(1));
        s.work.store(5, Ordering::Release);
        reg.release(1);
        // Second incarnation after teardown: a fresh build.
        let s2 = reg.checkout(1, || build(2));
        assert!(!s.same(&s2));
        s2.work.store(3, Ordering::Release);
        reg.release(1);
        assert_eq!(reg.with_retired(1, |c| (c.served, c.work)), Some((2, 8)));
        assert_eq!(
            reg.with_live(1, |_| ()),
            None,
            "no live entry after teardown"
        );
    }

    #[test]
    fn release_of_unknown_key_is_a_no_op() {
        let reg: LeaseRegistry<u32, FakeStage> = LeaseRegistry::new();
        reg.release(99);
        reg.for_each_retired(|_, _| panic!("nothing retired"));
    }

    #[test]
    fn drain_live_skips_the_retired_ledger() {
        let reg: LeaseRegistry<u32, FakeStage> = LeaseRegistry::new();
        let _a = reg.checkout(1, || build(1));
        let _b = reg.checkout(2, || build(2));
        let drained = reg.drain_live();
        assert_eq!(drained.len(), 2);
        reg.for_each_retired(|_, _| panic!("drain must not retire"));
    }
}
