//! Unified query handles across engine kinds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::value::Row;
use workshare_qpipe::QueryHandle;
use workshare_sim::{Machine, WaitSet};

/// Result slot used by the CJOIN and Volcano paths (the QPipe path reuses
/// the engine's own handle).
pub struct SlotResult {
    rows: Mutex<Option<Arc<Vec<Row>>>>,
    done: AtomicBool,
    ws: WaitSet,
    start_ns: f64,
    finish_ns: Mutex<f64>,
}

impl SlotResult {
    /// New pending slot stamped with the submission time.
    pub fn new(machine: &Machine, start_ns: f64) -> Arc<SlotResult> {
        Arc::new(SlotResult {
            rows: Mutex::new(None),
            done: AtomicBool::new(false),
            ws: WaitSet::new(machine),
            start_ns,
            finish_ns: Mutex::new(0.0),
        })
    }

    /// Publish the result.
    pub fn complete(&self, rows: Arc<Vec<Row>>, now_ns: f64) {
        *self.rows.lock() = Some(rows);
        *self.finish_ns.lock() = now_ns;
        self.done.store(true, Ordering::Release);
        self.ws.notify_all();
    }
}

/// Handle to a submitted query, independent of the engine that runs it.
#[derive(Clone)]
pub enum Ticket {
    /// Query executed by the QPipe engine.
    Qpipe(QueryHandle),
    /// Query executed by the CJOIN or Volcano paths.
    Slot(Arc<SlotResult>),
}

impl Ticket {
    /// Block (in virtual time from a vthread) until completion; returns the
    /// result rows.
    pub fn wait(&self) -> Arc<Vec<Row>> {
        match self {
            Ticket::Qpipe(h) => h.wait(),
            Ticket::Slot(s) => {
                let s2 = Arc::clone(s);
                s.ws.wait_for(move || {
                    if s2.done.load(Ordering::Acquire) {
                        Some(s2.rows.lock().clone().expect("done without rows"))
                    } else {
                        None
                    }
                })
            }
        }
    }

    /// Whether the query completed.
    pub fn is_done(&self) -> bool {
        match self {
            Ticket::Qpipe(h) => h.is_done(),
            Ticket::Slot(s) => s.done.load(Ordering::Acquire),
        }
    }

    /// Response time in virtual seconds (valid after completion).
    pub fn latency_secs(&self) -> f64 {
        match self {
            Ticket::Qpipe(h) => h.latency_secs(),
            Ticket::Slot(s) => (*s.finish_ns.lock() - s.start_ns) / 1e9,
        }
    }

    /// Completion timestamp in virtual nanoseconds.
    pub fn finish_ns(&self) -> f64 {
        match self {
            Ticket::Qpipe(h) => h.finish_ns(),
            Ticket::Slot(s) => *s.finish_ns.lock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;
    use workshare_sim::MachineConfig;

    #[test]
    fn slot_ticket_roundtrip() {
        let m = Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        });
        let slot = SlotResult::new(&m, 0.0);
        let t = Ticket::Slot(Arc::clone(&slot));
        assert!(!t.is_done());
        let s2 = Arc::clone(&slot);
        m.spawn("producer", move |ctx| {
            ctx.charge(workshare_sim::CostKind::Misc, 5e6);
            s2.complete(
                Arc::new(vec![vec![Value::Int(1)]]),
                ctx.machine().now_ns(),
            );
        });
        let rows = t.wait();
        assert_eq!(rows.len(), 1);
        assert!(t.is_done());
        assert!((t.latency_secs() - 0.005).abs() < 1e-9);
        assert!(t.finish_ns() > 0.0);
    }
}
