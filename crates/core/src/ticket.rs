//! Unified query handles across engine kinds.

use workshare_common::sync::{Arc, Mutex};

use workshare_common::value::Row;
use workshare_qpipe::QueryHandle;
use workshare_sim::{Machine, WaitSet};

use crate::cell::CompletionCell;

/// Result slot used by the CJOIN and Volcano paths (the QPipe path reuses
/// the engine's own handle). The write-once publish/claim protocol lives
/// in [`CompletionCell`] (model-checked by `tests/interleave_core.rs`);
/// this type adds the sim-side plumbing: virtual-time waiters and latency
/// stamps.
pub struct SlotResult {
    cell: CompletionCell<Arc<Vec<Row>>>,
    ws: WaitSet,
    machine: Machine,
    start_ns: f64,
    finish_ns: Mutex<f64>,
}

impl SlotResult {
    /// New pending slot stamped with the submission time.
    pub fn new(machine: &Machine, start_ns: f64) -> Arc<SlotResult> {
        Arc::new(SlotResult {
            cell: CompletionCell::new(),
            ws: WaitSet::new(machine),
            machine: machine.clone(),
            start_ns,
            finish_ns: Mutex::new(0.0),
        })
    }

    /// Publish the result. First write wins: a slot already completed (or
    /// poisoned) ignores the call.
    pub fn complete(&self, rows: Arc<Vec<Row>>, now_ns: f64) {
        if self.cell.complete(rows) {
            *self.finish_ns.lock() = now_ns;
            self.ws.notify_all();
        }
    }

    /// Poison the slot with an error: waiters wake with empty rows and
    /// [`Ticket::error`] reports the message. Used when a producer sheds,
    /// fails to bind, or abandons the slot by panicking. First write wins,
    /// as with [`SlotResult::complete`].
    pub fn complete_error(&self, msg: impl Into<String>, now_ns: f64) {
        if self.cell.complete_error(msg) {
            *self.finish_ns.lock() = now_ns;
            self.ws.notify_all();
        }
    }
}

/// RAII guard held by a slot's producer thread. Dropping the guard without
/// [`CompletionGuard::disarm`]ing it poisons the slot, so a producer that
/// panics (or early-returns on an error path) yields an error outcome at the
/// waiter instead of a deadlock on a slot nobody will ever complete.
pub struct CompletionGuard {
    slot: Arc<SlotResult>,
    armed: bool,
}

impl CompletionGuard {
    /// Arm a guard for `slot`.
    pub fn new(slot: Arc<SlotResult>) -> CompletionGuard {
        CompletionGuard { slot, armed: true }
    }

    /// The producer completed the slot normally; the drop becomes a no-op.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if self.armed {
            let now = self.slot.machine.now_ns();
            self.slot
                .complete_error("producer abandoned the result slot", now);
        }
    }
}

/// Handle to a submitted query, independent of the engine that runs it.
#[derive(Clone)]
pub enum Ticket {
    /// Query executed by the QPipe engine.
    Qpipe(QueryHandle),
    /// Query executed by the CJOIN or Volcano paths.
    Slot(Arc<SlotResult>),
}

impl Ticket {
    /// Block (in virtual time from a vthread) until completion; returns the
    /// result rows (empty when the slot was poisoned — check
    /// [`Ticket::error`]).
    pub fn wait(&self) -> Arc<Vec<Row>> {
        match self {
            Ticket::Qpipe(h) => h.wait(),
            Ticket::Slot(s) => {
                let s2 = Arc::clone(s);
                s.ws.wait_for(move || {
                    s2.cell.try_outcome().map(|outcome| match outcome {
                        Ok(rows) => rows,
                        Err(_) => Arc::new(Vec::new()),
                    })
                })
            }
        }
    }

    /// Whether the query completed.
    pub fn is_done(&self) -> bool {
        match self {
            Ticket::Qpipe(h) => h.is_done(),
            Ticket::Slot(s) => s.cell.is_done(),
        }
    }

    /// The error that poisoned this query's slot, if any. QPipe handles
    /// never poison (the engine completes them inline).
    pub fn error(&self) -> Option<String> {
        match self {
            Ticket::Qpipe(_) => None,
            Ticket::Slot(s) => s.cell.error(),
        }
    }

    /// Response time in virtual seconds (valid after completion).
    pub fn latency_secs(&self) -> f64 {
        match self {
            Ticket::Qpipe(h) => h.latency_secs(),
            Ticket::Slot(s) => (*s.finish_ns.lock() - s.start_ns) / 1e9,
        }
    }

    /// Completion timestamp in virtual nanoseconds.
    pub fn finish_ns(&self) -> f64 {
        match self {
            Ticket::Qpipe(h) => h.finish_ns(),
            Ticket::Slot(s) => *s.finish_ns.lock(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;
    use workshare_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        })
    }

    #[test]
    fn slot_ticket_roundtrip() {
        let m = machine();
        let slot = SlotResult::new(&m, 0.0);
        let t = Ticket::Slot(Arc::clone(&slot));
        assert!(!t.is_done());
        let s2 = Arc::clone(&slot);
        m.spawn("producer", move |ctx| {
            let guard = CompletionGuard::new(Arc::clone(&s2));
            ctx.charge(workshare_sim::CostKind::Misc, 5e6);
            s2.complete(
                Arc::new(vec![vec![Value::Int(1)]]),
                ctx.machine().now_ns(),
            );
            guard.disarm();
        });
        let rows = t.wait();
        assert_eq!(rows.len(), 1);
        assert!(t.is_done());
        assert!(t.error().is_none(), "disarmed guard must not poison");
        assert!((t.latency_secs() - 0.005).abs() < 1e-9);
        assert!(t.finish_ns() > 0.0);
    }

    #[test]
    fn panicking_producer_poisons_instead_of_deadlocking() {
        let m = machine();
        let slot = SlotResult::new(&m, 0.0);
        let t = Ticket::Slot(Arc::clone(&slot));
        let s2 = Arc::clone(&slot);
        let h = m.spawn("doomed-producer", move |ctx| {
            let _guard = CompletionGuard::new(s2);
            ctx.charge(workshare_sim::CostKind::Misc, 1e6);
            panic!("producer blew up mid-query");
        });
        // The waiter wakes (no deadlock) with empty rows and the error set.
        let rows = t.wait();
        assert!(rows.is_empty());
        assert_eq!(t.error().as_deref(), Some("producer abandoned the result slot"));
        assert!(t.is_done());
        assert!(h.join().is_err(), "the producer really panicked");
    }

    #[test]
    fn explicit_error_completion_wins_over_guard() {
        let m = machine();
        let slot = SlotResult::new(&m, 0.0);
        let t = Ticket::Slot(Arc::clone(&slot));
        let s2 = Arc::clone(&slot);
        m.spawn("erroring-producer", move |ctx| {
            let _guard = CompletionGuard::new(Arc::clone(&s2));
            s2.complete_error("query failed to bind", ctx.machine().now_ns());
            // Guard drops armed, but complete_error is first-write-wins.
        });
        t.wait();
        assert_eq!(t.error().as_deref(), Some("query failed to bind"));
    }
}
