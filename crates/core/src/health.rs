//! Aggregated fault-injection and self-healing counters surfaced on run
//! reports ([`RunReport::health`](crate::harness::RunReport::health),
//! [`ThroughputReport::health`](crate::harness::ThroughputReport::health)).
//!
//! With the default (fully off) [`FaultPlan`](crate::config::FaultPlan)
//! every field is zero. With faults armed the acceptance invariant is that
//! every injected fault and every recovery action is **accounted**: a
//! transition of the fabric → pool → serial ladder, a retried page read, a
//! re-dispatched straggler subscan, a quarantined stage — each shows up in
//! exactly one counter here.

use workshare_cjoin::AdmissionHealthSnapshot;
use workshare_storage::StorageFaultStats;

/// Point-in-time fault/recovery accounting across all layers of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Storage-layer injection and recovery counters: transient / permanent
    /// / torn faults injected, retried attempts, pages quarantined and
    /// rebuilt.
    pub storage: StorageFaultStats,
    /// Admission-layer counters: injected stalls / panics / wedges,
    /// straggler re-dispatches, failed batches, reclaimed queries, and the
    /// ladder's demotions / promotions (plus the current rung).
    pub admission: AdmissionHealthSnapshot,
    /// Stage builds that failed by injection and were quarantined through
    /// the lease registry's retired ledger, then rebuilt.
    pub stage_rebuilds: u64,
}

impl HealthStats {
    /// Total faults injected across every site.
    pub fn faults_injected(&self) -> u64 {
        self.storage.injected()
            + self.admission.injected_stalls
            + self.admission.injected_panics
            + self.admission.injected_wedges
            + self.stage_rebuilds
    }

    /// Total recovery actions taken (retries, re-dispatches, requeues,
    /// respawns, page rebuilds, stage rebuilds, ladder moves).
    pub fn recovery_actions(&self) -> u64 {
        self.storage.retries
            + self.storage.pages_rebuilt
            + self.admission.redispatches
            + self.admission.requeued
            + self.admission.fabric_respawns
            + self.admission.demotions
            + self.admission.promotions
            + self.stage_rebuilds
    }

    /// Whether nothing was ever injected — true for every run with the
    /// default [`FaultPlan`](crate::config::FaultPlan) (the bit-for-bit
    /// legacy guarantee).
    pub fn is_quiet(&self) -> bool {
        *self == HealthStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        let h = HealthStats::default();
        assert!(h.is_quiet());
        assert_eq!(h.faults_injected(), 0);
        assert_eq!(h.recovery_actions(), 0);
    }
}
