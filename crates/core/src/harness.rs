//! Experiment harness: batch runs and closed-loop client runs, reporting the
//! measurements the paper's figures and tables are built from.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use workshare_common::value::Row;
use workshare_common::StarQuery;
use workshare_sim::{CostKind, CpuBreakdown, DiskStats, LatencyHistogram, Machine};

use crate::config::RunConfig;
use crate::dataset::Dataset;
use crate::engine::{Engine, Outcome, ShedReason};

/// Measurements of one batch run (the unit behind every response-time
/// figure).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label.
    pub config: &'static str,
    /// Number of queries.
    pub queries: usize,
    /// Per-query response times, seconds (submission → completion).
    pub latencies_secs: Vec<f64>,
    /// Batch makespan, seconds (start → last completion).
    pub makespan_secs: f64,
    /// The paper's "Avg. # Cores Used": core-busy time / makespan.
    pub avg_cores_used: f64,
    /// The paper's "Avg. Read Rate (MB/s)".
    pub read_rate_mbps: f64,
    /// Per-category CPU time consumed by the run.
    pub cpu: CpuBreakdown,
    /// Disk activity of the run.
    pub disk: DiskStats,
    /// QPipe sharing statistics (if the engine was a QPipe variant).
    pub qpipe_sharing: Option<workshare_qpipe::SharingStats>,
    /// CJOIN statistics (if the engine was a CJOIN variant; aggregate over
    /// all sharded stages — plus the cross-stage fabric's physical reads —
    /// when governed).
    pub cjoin: Option<workshare_cjoin::CjoinStats>,
    /// Cross-stage admission-fabric counters (governed engines with
    /// [`RunConfig::admission_fabric`] on): batching windows, cross-stage
    /// merges, and the physical dimension pages read once per window on
    /// behalf of every stage.
    pub fabric: Option<workshare_cjoin::FabricStats>,
    /// Per-fact-table stage rows of a governed run's shared side: which
    /// sharded CJOIN stage served how many shared star queries, labeled
    /// with the fact table (`Shared(lineorder)`). Empty for ungoverned
    /// engines.
    pub stages: Vec<crate::engine::StageRow>,
    /// Sharing-governor routing statistics (if the run was governed).
    pub governor: Option<crate::governor::GovernorStats>,
    /// Fault-injection and self-healing accounting (all-zero with the
    /// default, fully-off [`crate::config::FaultPlan`]).
    pub health: crate::health::HealthStats,
    /// Query results (kept only when requested).
    pub results: Option<Vec<Arc<Vec<Row>>>>,
}

impl RunReport {
    /// Mean response time, seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.latencies_secs.is_empty() {
            return 0.0;
        }
        self.latencies_secs.iter().sum::<f64>() / self.latencies_secs.len() as f64
    }

    /// Maximum response time, seconds.
    pub fn max_latency_secs(&self) -> f64 {
        self.latencies_secs.iter().copied().fold(0.0, f64::max)
    }

    /// CJOIN admission time, seconds (Fig. 11/12's stacked `CJOIN
    /// Admission` component).
    pub fn admission_secs(&self) -> f64 {
        self.cpu.secs(CostKind::Admission)
    }
}

/// Run `queries` as one simultaneous batch (paper §5.1: "queries are
/// submitted at the same time, and are all evaluated concurrently").
pub fn run_batch(
    dataset: &Dataset,
    config: &RunConfig,
    queries: &[StarQuery],
    keep_results: bool,
) -> RunReport {
    run_batch_on(dataset, config, "lineorder", queries, keep_results)
}

/// [`run_batch`] with an explicit fact table (TPC-H workloads use
/// `lineitem`).
pub fn run_batch_on(
    dataset: &Dataset,
    config: &RunConfig,
    fact_table: &str,
    queries: &[StarQuery],
    keep_results: bool,
) -> RunReport {
    let machine = Machine::new(config.machine_config());
    let storage = dataset.instantiate(config.storage_config(), config.cost);
    let engine = Engine::new(&machine, &storage, config, fact_table);

    let cpu0 = machine.cpu_breakdown();
    let disk0 = machine.disk_stats();
    let start_ns = machine.now_ns();

    let e2 = engine.clone();
    let qs: Vec<StarQuery> = queries.to_vec();
    let results = machine
        .spawn("harness", move |_ctx| {
            e2.close_gate();
            let tickets: Vec<_> = qs.iter().map(|q| e2.submit(q)).collect();
            e2.open_gate();
            let mut rows = Vec::with_capacity(tickets.len());
            let mut lats = Vec::with_capacity(tickets.len());
            for t in &tickets {
                rows.push(t.wait());
                lats.push(t.latency_secs());
            }
            (rows, lats)
        })
        .join()
        .expect("harness vthread panicked");
    let (rows, latencies_secs) = results;

    let end_ns = machine.now_ns();
    let makespan_secs = (end_ns - start_ns) / 1e9;
    let cpu = machine.cpu_breakdown().delta(&cpu0);
    let disk = machine.disk_stats().delta(&disk0);
    let avg_cores_used = if makespan_secs > 0.0 {
        (machine.busy_core_secs()) / makespan_secs
    } else {
        0.0
    };
    let report = RunReport {
        config: config.label(),
        queries: queries.len(),
        latencies_secs,
        makespan_secs,
        avg_cores_used: avg_cores_used.min(config.cores as f64),
        read_rate_mbps: disk.read_rate_mbps(end_ns - start_ns),
        cpu,
        disk,
        qpipe_sharing: engine.qpipe_sharing(),
        cjoin: engine.cjoin_stats(),
        fabric: engine.fabric_stats(),
        stages: engine.stage_rows(),
        governor: engine.governor_stats(),
        health: engine.health_stats(),
        results: keep_results.then_some(rows),
    };
    engine.shutdown();
    report
}

/// Run `queries` with a fixed interarrival delay between submissions
/// (virtual seconds). This is how Windows of Opportunity are probed: step
/// WoPs close as soon as the host emits its first page, while linear WoPs
/// (circular scans) accept latecomers until the host finishes.
pub fn run_staggered(
    dataset: &Dataset,
    config: &RunConfig,
    fact_table: &str,
    queries: &[StarQuery],
    interarrival_secs: f64,
    keep_results: bool,
) -> RunReport {
    let machine = Machine::new(config.machine_config());
    let storage = dataset.instantiate(config.storage_config(), config.cost);
    let engine = Engine::new(&machine, &storage, config, fact_table);
    let cpu0 = machine.cpu_breakdown();
    let disk0 = machine.disk_stats();
    let start_ns = machine.now_ns();

    let e2 = engine.clone();
    let qs: Vec<StarQuery> = queries.to_vec();
    let (rows, latencies_secs) = machine
        .spawn("harness", move |ctx| {
            let mut tickets = Vec::with_capacity(qs.len());
            for (i, q) in qs.iter().enumerate() {
                if i > 0 && interarrival_secs > 0.0 {
                    ctx.sleep(interarrival_secs * 1e9);
                }
                tickets.push(e2.submit(q));
            }
            let mut rows = Vec::with_capacity(tickets.len());
            let mut lats = Vec::with_capacity(tickets.len());
            for t in &tickets {
                rows.push(t.wait());
                lats.push(t.latency_secs());
            }
            (rows, lats)
        })
        .join()
        .expect("harness vthread panicked");

    let end_ns = machine.now_ns();
    let makespan_secs = (end_ns - start_ns) / 1e9;
    let disk = machine.disk_stats().delta(&disk0);
    let report = RunReport {
        config: config.label(),
        queries: queries.len(),
        latencies_secs,
        makespan_secs,
        avg_cores_used: if makespan_secs > 0.0 {
            (machine.busy_core_secs() / makespan_secs).min(config.cores as f64)
        } else {
            0.0
        },
        read_rate_mbps: disk.read_rate_mbps(end_ns - start_ns),
        cpu: machine.cpu_breakdown().delta(&cpu0),
        disk,
        qpipe_sharing: engine.qpipe_sharing(),
        cjoin: engine.cjoin_stats(),
        fabric: engine.fabric_stats(),
        stages: engine.stage_rows(),
        governor: engine.governor_stats(),
        health: engine.health_stats(),
        results: keep_results.then_some(rows),
    };
    engine.shutdown();
    report
}

/// Measurements of one closed-loop client run (Fig. 16's throughput panel)
/// or one [`run_service`] overload run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Configuration label.
    pub config: &'static str,
    /// Concurrent clients.
    pub clients: usize,
    /// Queries submitted (admitted **or** shed) inside the window.
    pub submitted: u64,
    /// Queries completed inside the measurement window.
    pub completed: u64,
    /// Admitted queries that completed only after the window closed (they
    /// count toward conservation, not toward throughput).
    pub completed_late: u64,
    /// Submissions shed because the bounded admission queue was full.
    pub shed_queue_full: u64,
    /// Submissions shed because no route was predicted to meet the
    /// deadline.
    pub shed_deadline: u64,
    /// Admitted queries that ended in a per-query error outcome
    /// ([`crate::Ticket::error`]).
    pub errors: u64,
    /// Throughput in queries per virtual hour.
    pub queries_per_hour: f64,
    /// Goodput in queries per virtual hour: completed **within the
    /// configured SLO target** ([`crate::ServiceConfig::slo_target_secs`]
    /// — the enforced deadline, or the observability-only p99 target);
    /// equals `queries_per_hour` when neither is set.
    pub goodput_per_hour: f64,
    /// Mean response time over completed queries, seconds.
    pub mean_latency_secs: f64,
    /// Median response time over completed queries, seconds.
    pub p50_latency_secs: f64,
    /// 99th-percentile response time over completed queries, seconds.
    pub p99_latency_secs: f64,
    /// "Avg. # Cores Used" over the window.
    pub avg_cores_used: f64,
    /// "Avg. Read Rate (MB/s)" over the window.
    pub read_rate_mbps: f64,
    /// Per-tenant outcome counts (one row per tenant of the
    /// [`ServiceLoad`]; a single row for [`run_clients`]).
    pub tenants: Vec<TenantCounts>,
    /// Sharing-governor routing statistics (if the run was governed) —
    /// under closed-loop arrivals the calibration residuals here are the
    /// check that the latency-feedback EWMA converges outside the batch
    /// arrival pattern the estimator's queue term assumes.
    pub governor: Option<crate::governor::GovernorStats>,
    /// Per-fact-table stage rows of a governed run's shared side.
    pub stages: Vec<crate::engine::StageRow>,
    /// Cross-stage admission-fabric counters, when the engine ran one.
    pub fabric: Option<workshare_cjoin::FabricStats>,
    /// Fault-injection and self-healing accounting (all-zero with the
    /// default, fully-off [`crate::config::FaultPlan`]).
    pub health: crate::health::HealthStats,
}

impl ThroughputReport {
    /// Conservation check: every submitted query ended in exactly one of
    /// {completed (in-window or late), shed, error}.
    pub fn is_conserved(&self) -> bool {
        self.submitted
            == self.completed
                + self.completed_late
                + self.shed_queue_full
                + self.shed_deadline
                + self.errors
    }
}

/// Per-tenant outcome counts of a [`run_service`] run. `submitted ==
/// completed + shed + errors` per tenant (completed includes late
/// completions — the window cutoff is not a per-tenant property).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounts {
    /// Tenant id (client `c` maps to tenant `c % tenants`).
    pub tenant: usize,
    /// Queries this tenant submitted.
    pub submitted: u64,
    /// Queries admitted and completed (in-window or late).
    pub completed: u64,
    /// Queries shed (either reason).
    pub shed: u64,
    /// Queries admitted that ended in an error outcome.
    pub errors: u64,
}

/// Offered-load description of a [`run_service`] run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLoad {
    /// Client vthreads.
    pub clients: usize,
    /// `None` = closed loop (each client waits for its query before
    /// submitting the next — the legacy [`run_clients`] behavior).
    /// `Some(rate)` = open loop: clients submit with exponential
    /// interarrival times at an aggregate `rate` arrivals per virtual
    /// second, without waiting — offered load keeps rising past
    /// saturation, which is what the overload gates sweep.
    pub arrivals_per_sec: Option<f64>,
    /// Distinct tenants; client `c` submits as tenant `c % tenants`.
    pub tenants: usize,
    /// Measurement window, virtual seconds.
    pub window_secs: f64,
    /// Workload seed.
    pub seed: u64,
}

/// Virtual backoff after a shed submission in closed-loop mode. Without it
/// a shedding engine would let the client loop spin without advancing
/// virtual time (sheds consume none), hanging the simulation in real time.
const SHED_BACKOFF_NS: f64 = 10e6;

/// Per-client tally of a [`run_service`] run.
#[derive(Default)]
struct ClientTally {
    submitted: u64,
    completed: u64,
    completed_late: u64,
    shed_queue_full: u64,
    shed_deadline: u64,
    errors: u64,
    lat_sum: f64,
    latencies: Vec<f64>,
    within_deadline: u64,
}

impl ClientTally {
    /// Fold a finished ticket in (`deadline_ns` = window cutoff).
    fn settle(&mut self, t: &crate::Ticket, window_end_ns: f64, deadline_secs: Option<f64>) {
        if t.error().is_some() {
            self.errors += 1;
        } else if t.finish_ns() <= window_end_ns {
            self.completed += 1;
            let lat = t.latency_secs();
            self.lat_sum += lat;
            self.latencies.push(lat);
            if deadline_secs.is_none_or(|d| lat <= d) {
                self.within_deadline += 1;
            }
        } else {
            self.completed_late += 1;
        }
    }
}

/// Closed-loop run: each of `clients` submits a query, waits for it, then
/// submits the next, for `window_secs` of virtual time. `make_query`
/// instantiates the next query for `(client, sequence)`. Thin wrapper over
/// [`run_service`] with a closed loop and a single tenant — with the
/// default (inactive) [`crate::ServiceConfig`] the behavior and counts are
/// exactly the legacy ones.
pub fn run_clients<F>(
    dataset: &Dataset,
    config: &RunConfig,
    fact_table: &str,
    clients: usize,
    window_secs: f64,
    seed: u64,
    make_query: F,
) -> ThroughputReport
where
    F: Fn(u64, &mut StdRng) -> StarQuery + Send + Sync + 'static,
{
    run_service(
        dataset,
        config,
        fact_table,
        ServiceLoad {
            clients,
            arrivals_per_sec: None,
            tenants: 1,
            window_secs,
            seed,
        },
        make_query,
    )
}

/// Service-loop run: drive the engine with `load` (closed- or open-loop
/// arrivals, multi-tenant) through the bounded-admission front door
/// ([`Engine::try_submit`]), reporting shed counts by reason, p50/p99
/// latency of admitted queries, and goodput alongside the classic
/// throughput metrics. Every submission ends in exactly one of
/// {completed, shed, error} ([`ThroughputReport::is_conserved`]).
pub fn run_service<F>(
    dataset: &Dataset,
    config: &RunConfig,
    fact_table: &str,
    load: ServiceLoad,
    make_query: F,
) -> ThroughputReport
where
    F: Fn(u64, &mut StdRng) -> StarQuery + Send + Sync + 'static,
{
    let machine = Machine::new(config.machine_config());
    let storage = dataset.instantiate(config.storage_config(), config.cost);
    let engine = Engine::new(&machine, &storage, config, fact_table);
    let disk0 = machine.disk_stats();
    let make_query = Arc::new(make_query);
    // Goodput yardstick: the enforced deadline, or the observability-only
    // p99 target when only that is set (lets an unbounded baseline report
    // deadline-accounted goodput without enabling shedding).
    let deadline_secs = config.service.slo_target_secs();
    let tenants = load.tenants.max(1);

    let e2 = engine.clone();
    let tallies: Vec<(usize, ClientTally)> = machine
        .spawn("clients", move |ctx| {
            let window_end_ns = ctx.machine().now_ns() + load.window_secs * 1e9;
            let workers: Vec<_> = (0..load.clients)
                .map(|c| {
                    let engine = e2.clone();
                    let make_query = Arc::clone(&make_query);
                    let tenant = c % tenants;
                    // Per-client share of the aggregate open-loop rate.
                    let rate = load
                        .arrivals_per_sec
                        .map(|r| (r / load.clients.max(1) as f64).max(1e-9));
                    ctx.machine().spawn(&format!("client-{c}"), move |ctx| {
                        let mut rng = StdRng::seed_from_u64(load.seed ^ (c as u64) << 20);
                        let mut tally = ClientTally::default();
                        let mut open_tickets = Vec::new();
                        let mut seq = 0u64;
                        while ctx.machine().now_ns() < window_end_ns {
                            if let Some(rate) = rate {
                                // Open loop: exponential interarrival gap
                                // first, then submit without waiting.
                                let u: f64 = rng.gen_range(1e-12..1.0f64);
                                ctx.sleep(-u.ln() / rate * 1e9);
                                if ctx.machine().now_ns() >= window_end_ns {
                                    break;
                                }
                            }
                            let qid = (c as u64) << 32 | seq;
                            seq += 1;
                            let q = make_query(qid, &mut rng);
                            tally.submitted += 1;
                            match engine.try_submit(&q, tenant) {
                                Outcome::Admitted(t) => {
                                    if rate.is_some() {
                                        open_tickets.push(t);
                                    } else {
                                        t.wait();
                                        tally.settle(&t, window_end_ns, deadline_secs);
                                        if t.error().is_some() {
                                            // Error outcomes complete without
                                            // consuming virtual time; back off
                                            // like a shed so an all-error
                                            // workload cannot spin the loop.
                                            ctx.sleep(SHED_BACKOFF_NS);
                                        }
                                    }
                                }
                                Outcome::Shed { reason } => {
                                    match reason {
                                        ShedReason::QueueFull => tally.shed_queue_full += 1,
                                        ShedReason::Deadline => tally.shed_deadline += 1,
                                    }
                                    if rate.is_none() {
                                        // Closed loop: back off in virtual
                                        // time so a shedding engine cannot
                                        // spin the loop without the clock
                                        // advancing.
                                        ctx.sleep(SHED_BACKOFF_NS);
                                    }
                                }
                            }
                        }
                        // Open loop: drain what was admitted.
                        for t in &open_tickets {
                            t.wait();
                            tally.settle(t, window_end_ns, deadline_secs);
                        }
                        (tenant, tally)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("client panicked"))
                .collect()
        })
        .join()
        .expect("client harness panicked");

    let mut total = ClientTally::default();
    let mut hist = LatencyHistogram::new();
    let mut per_tenant: Vec<TenantCounts> = (0..tenants)
        .map(|t| TenantCounts {
            tenant: t,
            ..Default::default()
        })
        .collect();
    for (tenant, tally) in &tallies {
        total.submitted += tally.submitted;
        total.completed += tally.completed;
        total.completed_late += tally.completed_late;
        total.shed_queue_full += tally.shed_queue_full;
        total.shed_deadline += tally.shed_deadline;
        total.errors += tally.errors;
        total.lat_sum += tally.lat_sum;
        total.within_deadline += tally.within_deadline;
        for &l in &tally.latencies {
            hist.record(l);
        }
        let row = &mut per_tenant[*tenant];
        row.submitted += tally.submitted;
        row.completed += tally.completed + tally.completed_late;
        row.shed += tally.shed_queue_full + tally.shed_deadline;
        row.errors += tally.errors;
    }

    let window_ns = machine.now_ns().min(load.window_secs * 1e9).max(1.0);
    let disk = machine.disk_stats().delta(&disk0);
    let per_hour = |n: u64| n as f64 / (load.window_secs / 3600.0);
    let report = ThroughputReport {
        config: config.label(),
        clients: load.clients,
        submitted: total.submitted,
        completed: total.completed,
        completed_late: total.completed_late,
        shed_queue_full: total.shed_queue_full,
        shed_deadline: total.shed_deadline,
        errors: total.errors,
        queries_per_hour: per_hour(total.completed),
        goodput_per_hour: per_hour(total.within_deadline),
        mean_latency_secs: if total.completed > 0 {
            total.lat_sum / total.completed as f64
        } else {
            0.0
        },
        p50_latency_secs: hist.quantile(0.5),
        p99_latency_secs: hist.quantile(0.99),
        avg_cores_used: (machine.busy_core_secs() / (window_ns / 1e9))
            .min(config.cores as f64),
        read_rate_mbps: disk.read_rate_mbps(window_ns),
        tenants: per_tenant,
        governor: engine.governor_stats(),
        stages: engine.stage_rows(),
        fabric: engine.fabric_stats(),
        health: engine.health_stats(),
    };
    engine.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NamedConfig;
    use crate::workload;

    fn dataset() -> Dataset {
        Dataset::ssb(0.05, 11)
    }

    fn q32_batch(n: usize, seed: u64) -> Vec<StarQuery> {
        let mut r = workload::rng(seed);
        (0..n).map(|i| workload::ssb_q3_2(i as u64, &mut r)).collect()
    }

    #[test]
    fn all_engines_agree_on_results() {
        let d = dataset();
        let queries = q32_batch(3, 5);
        let mut baseline: Option<Vec<Vec<Row>>> = None;
        for engine in NamedConfig::all() {
            let cfg = RunConfig::named(engine);
            let rep = run_batch(&d, &cfg, &queries, true);
            let got: Vec<Vec<Row>> = rep
                .results
                .unwrap()
                .iter()
                .map(|r| (**r).clone())
                .collect();
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(&got, b, "{engine:?} diverged"),
            }
        }
    }

    #[test]
    fn report_metrics_are_sane() {
        let d = dataset();
        let cfg = RunConfig::named(NamedConfig::QpipeSp);
        let rep = run_batch(&d, &cfg, &q32_batch(4, 9), false);
        assert_eq!(rep.queries, 4);
        assert_eq!(rep.latencies_secs.len(), 4);
        assert!(rep.makespan_secs > 0.0);
        assert!(rep.mean_latency_secs() > 0.0);
        assert!(rep.max_latency_secs() <= rep.makespan_secs * 1.0001);
        assert!(rep.avg_cores_used > 0.0);
        assert!(rep.avg_cores_used <= 24.0);
        assert!(rep.cpu.total_secs() > 0.0);
        assert!(rep.qpipe_sharing.is_some());
        assert!(rep.cjoin.is_none());
    }

    #[test]
    fn disk_resident_runs_report_read_rate() {
        let d = dataset();
        let mut cfg = RunConfig::named(NamedConfig::QpipeCs);
        cfg.io_mode = workshare_storage::IoMode::BufferedDisk;
        let rep = run_batch(&d, &cfg, &q32_batch(2, 3), false);
        assert!(rep.disk.bytes_read > 0, "disk mode must read bytes");
        assert!(rep.read_rate_mbps > 0.0);
    }

    #[test]
    fn closed_loop_clients_complete_queries() {
        let d = dataset();
        let cfg = RunConfig::named(NamedConfig::QpipeSp);
        let rep = run_clients(&d, &cfg, "lineorder", 3, 2.0, 42, |id, rng| {
            workload::ssb_q3_2(id, rng)
        });
        assert!(rep.completed > 0, "{rep:?}");
        assert!(rep.queries_per_hour > 0.0);
        assert!(rep.mean_latency_secs > 0.0);
    }
}
