//! Workload templates: the paper's SSB and TPC-H query generators.
//!
//! Each template mirrors the corresponding SQL of the paper:
//!
//! * [`ssb_q3_2`] — the sensitivity-analysis star query (Fig. 9): three
//!   dimension joins, random nation predicates (selectivity 0.02–0.16 %).
//! * [`ssb_q3_2_narrow`] — year range capped at 2 (Fig. 14's 0.02–0.05 %).
//! * [`ssb_q3_2_wide`] — nation *disjunctions* for the Fig. 11 selectivity
//!   sweep (`(nc/25)·(ns/25)` fact selectivity).
//! * [`ssb_q1_1`], [`ssb_q2_1`] — the Fig. 16 mix members.
//! * [`tpch_q1`] — the Fig. 6 scan-heavy aggregation query (identical
//!   instances share everything).
//! * [`limited_plans`] — similarity control: draw N queries from a pool of
//!   exactly `n_plans` distinct plans (Figs. 14/15).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use workshare_common::{
    AggSpec, CmpOp, ColRef, DimJoin, OrderKey, Predicate, StarQuery, Value,
};
use workshare_datagen::{
    customer_schema, date_schema, lineitem_schema, lineorder_schema, part_schema,
    supplier_schema, NATIONS, REGIONS,
};

/// Deterministic workload RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x0077_0AD5)
}

fn q3_2_impl(id: u64, rng: &mut StdRng, max_year_span: i64) -> StarQuery {
    let cs = customer_schema();
    let ss = supplier_schema();
    let ds = date_schema();
    let ls = lineorder_schema();
    let c_nation = NATIONS[rng.gen_range(0..NATIONS.len())];
    let s_nation = NATIONS[rng.gen_range(0..NATIONS.len())];
    let y0 = rng.gen_range(1992..=1998i64);
    let span = rng.gen_range(0..max_year_span.max(1));
    let y1 = (y0 + span).min(1998);
    let _ = ls;
    StarQuery {
        id,
        fact: "lineorder".into(),
        fact_pred: Predicate::True,
        dims: vec![
            DimJoin {
                dim: "customer".into(),
                fact_fk: "lo_custkey".into(),
                dim_pk: "c_custkey".into(),
                pred: Predicate::eq(cs.col("c_nation"), Value::str(c_nation)),
                payload: vec!["c_city".into()],
            },
            DimJoin {
                dim: "supplier".into(),
                fact_fk: "lo_suppkey".into(),
                dim_pk: "s_suppkey".into(),
                pred: Predicate::eq(ss.col("s_nation"), Value::str(s_nation)),
                payload: vec!["s_city".into()],
            },
            DimJoin {
                dim: "date".into(),
                fact_fk: "lo_orderdate".into(),
                dim_pk: "d_datekey".into(),
                pred: Predicate::between(ds.col("d_year"), y0, y1),
                payload: vec!["d_year".into()],
            },
        ],
        group_by: vec![
            ColRef::dim(0, "c_city"),
            ColRef::dim(1, "s_city"),
            ColRef::dim(2, "d_year"),
        ],
        aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
        order_by: vec![
            OrderKey {
                output_idx: 2,
                desc: false,
            },
            OrderKey {
                output_idx: 3,
                desc: true,
            },
        ],
    }
}

/// SSB Q3.2 with random predicates (paper Fig. 9 template; fact selectivity
/// 0.02 %–0.16 %).
pub fn ssb_q3_2(id: u64, rng: &mut StdRng) -> StarQuery {
    q3_2_impl(id, rng, 7)
}

/// SSB Q3.2 with a narrow year range (≤ 2 years): the Fig. 14 workload
/// (0.02 %–0.05 % selectivity).
pub fn ssb_q3_2_narrow(id: u64, rng: &mut StdRng) -> StarQuery {
    q3_2_impl(id, rng, 2)
}

/// Modified SSB Q3.2 for the Fig. 11 selectivity sweep: the full year range
/// and nation **disjunctions** of sizes `nc` (customer) and `ns` (supplier),
/// giving fact selectivity `(nc/25)·(ns/25)`.
pub fn ssb_q3_2_wide(id: u64, rng: &mut StdRng, nc: usize, ns: usize) -> StarQuery {
    let cs = customer_schema();
    let ss = supplier_schema();
    let pick = |rng: &mut StdRng, n: usize| -> Vec<Value> {
        let mut idx: Vec<usize> = (0..NATIONS.len()).collect();
        for i in 0..n.min(NATIONS.len()) {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n.min(NATIONS.len())]
            .iter()
            .map(|&i| Value::str(NATIONS[i]))
            .collect()
    };
    let mut q = q3_2_impl(id, rng, 7);
    q.dims[0].pred = Predicate::in_set(cs.col("c_nation"), pick(rng, nc));
    q.dims[1].pred = Predicate::in_set(ss.col("s_nation"), pick(rng, ns));
    q.dims[2].pred = Predicate::between(date_schema().col("d_year"), 1992i64, 1998i64);
    q
}

/// SSB Q1.1: one date join, fact predicates on discount and quantity,
/// a single global `SUM(lo_extendedprice * lo_discount)`.
pub fn ssb_q1_1(id: u64, rng: &mut StdRng) -> StarQuery {
    let ds = date_schema();
    let ls = lineorder_schema();
    let year = rng.gen_range(1992..=1998i64);
    StarQuery {
        id,
        fact: "lineorder".into(),
        fact_pred: Predicate::and(vec![
            Predicate::between(ls.col("lo_discount"), 1i64, 3i64),
            Predicate::Cmp {
                col: ls.col("lo_quantity"),
                op: CmpOp::Lt,
                val: Value::Int(25),
            },
        ]),
        dims: vec![DimJoin {
            dim: "date".into(),
            fact_fk: "lo_orderdate".into(),
            dim_pk: "d_datekey".into(),
            pred: Predicate::eq(ds.col("d_year"), year),
            payload: vec![],
        }],
        group_by: vec![],
        aggs: vec![AggSpec::sum_product(
            ColRef::fact("lo_extendedprice"),
            ColRef::fact("lo_discount"),
        )],
        order_by: vec![],
    }
}

/// SSB Q2.1: part/supplier/date joins, grouped by year and brand.
pub fn ssb_q2_1(id: u64, rng: &mut StdRng) -> StarQuery {
    let ps = part_schema();
    let ss = supplier_schema();
    let mfgr = rng.gen_range(1..=5u32);
    let cat = rng.gen_range(1..=5u32);
    let region = REGIONS[rng.gen_range(0..REGIONS.len())];
    StarQuery {
        id,
        fact: "lineorder".into(),
        fact_pred: Predicate::True,
        dims: vec![
            DimJoin {
                dim: "part".into(),
                fact_fk: "lo_partkey".into(),
                dim_pk: "p_partkey".into(),
                pred: Predicate::eq(
                    ps.col("p_category"),
                    Value::str(&format!("MFGR#{mfgr}{cat}")),
                ),
                payload: vec!["p_brand1".into()],
            },
            DimJoin {
                dim: "supplier".into(),
                fact_fk: "lo_suppkey".into(),
                dim_pk: "s_suppkey".into(),
                pred: Predicate::eq(ss.col("s_region"), Value::str(region)),
                payload: vec![],
            },
            DimJoin {
                dim: "date".into(),
                fact_fk: "lo_orderdate".into(),
                dim_pk: "d_datekey".into(),
                pred: Predicate::True,
                payload: vec!["d_year".into()],
            },
        ],
        group_by: vec![ColRef::dim(2, "d_year"), ColRef::dim(0, "p_brand1")],
        aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
        order_by: vec![
            OrderKey {
                output_idx: 0,
                desc: false,
            },
            OrderKey {
                output_idx: 1,
                desc: false,
            },
        ],
    }
}

/// TPC-H Q1: a pure scan-aggregate over `lineitem` (no joins). All Fig. 6
/// instances are identical, maximizing sharing opportunities.
pub fn tpch_q1(id: u64) -> StarQuery {
    let ls = lineitem_schema();
    StarQuery {
        id,
        fact: "lineitem".into(),
        fact_pred: Predicate::Cmp {
            col: ls.col("l_shipdate"),
            op: CmpOp::Le,
            val: Value::Int(19980902),
        },
        dims: vec![],
        group_by: vec![
            ColRef::fact("l_returnflag"),
            ColRef::fact("l_linestatus"),
        ],
        aggs: vec![
            AggSpec::sum(ColRef::fact("l_quantity")),
            AggSpec::sum(ColRef::fact("l_extendedprice")),
            AggSpec::sum_product(
                ColRef::fact("l_extendedprice"),
                ColRef::fact("l_discount"),
            ),
            AggSpec {
                func: workshare_common::AggFn::Avg,
                expr: Some(workshare_common::AggExpr::Col(ColRef::fact("l_quantity"))),
            },
            AggSpec::count(),
        ],
        order_by: vec![
            OrderKey {
                output_idx: 0,
                desc: false,
            },
            OrderKey {
                output_idx: 1,
                desc: false,
            },
        ],
    }
}

/// Draw `n_queries` queries from a pool of exactly `n_plans` structurally
/// distinct plans produced by `template` (the paper's similarity knob,
/// Figs. 14/15). Ids are reassigned sequentially.
pub fn limited_plans<F>(
    n_queries: usize,
    n_plans: usize,
    seed: u64,
    mut template: F,
) -> Vec<StarQuery>
where
    F: FnMut(u64, &mut StdRng) -> StarQuery,
{
    let mut r = rng(seed);
    let mut pool: Vec<StarQuery> = Vec::with_capacity(n_plans);
    let mut sigs = std::collections::HashSet::new();
    let mut attempts = 0;
    while pool.len() < n_plans && attempts < n_plans * 200 {
        attempts += 1;
        let q = template(pool.len() as u64, &mut r);
        if sigs.insert(q.full_signature()) {
            pool.push(q);
        }
    }
    assert!(!pool.is_empty(), "template produced no distinct plans");
    (0..n_queries)
        .map(|i| {
            let mut q = pool[r.gen_range(0..pool.len())].clone();
            q.id = i as u64;
            q
        })
        .collect()
}

/// Round-robin mix of Q1.1 / Q2.1 / Q3.2 with random predicates (Fig. 16).
pub fn ssb_mix(n_queries: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = rng(seed);
    (0..n_queries)
        .map(|i| match i % 3 {
            0 => ssb_q1_1(i as u64, &mut r),
            1 => ssb_q2_1(i as u64, &mut r),
            _ => ssb_q3_2(i as u64, &mut r),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_2_shape() {
        let mut r = rng(1);
        let q = ssb_q3_2(5, &mut r);
        assert_eq!(q.dims.len(), 3);
        assert_eq!(q.output_arity(), 4);
        assert_eq!(q.id, 5);
    }

    #[test]
    fn identical_seeds_identical_queries() {
        let q1 = ssb_q3_2(1, &mut rng(9));
        let q2 = ssb_q3_2(2, &mut rng(9));
        assert_eq!(q1.full_signature(), q2.full_signature());
    }

    #[test]
    fn narrow_template_has_small_year_span() {
        let mut r = rng(2);
        for i in 0..50 {
            let q = ssb_q3_2_narrow(i, &mut r);
            if let Predicate::Between { lo, hi, .. } = &q.dims[2].pred {
                let span = hi.as_int() - lo.as_int();
                assert!(span <= 1, "span {span} too wide");
            } else {
                panic!("expected Between predicate");
            }
        }
    }

    #[test]
    fn wide_template_uses_disjunctions() {
        let mut r = rng(3);
        let q = ssb_q3_2_wide(1, &mut r, 5, 3);
        match &q.dims[0].pred {
            Predicate::InSet { vals, .. } => assert_eq!(vals.len(), 5),
            other => panic!("expected InSet, got {other:?}"),
        }
        match &q.dims[1].pred {
            Predicate::InSet { vals, .. } => assert_eq!(vals.len(), 3),
            other => panic!("expected InSet, got {other:?}"),
        }
    }

    #[test]
    fn limited_plans_bounds_distinct_signatures() {
        let qs = limited_plans(100, 4, 7, ssb_q3_2);
        let sigs: std::collections::HashSet<u64> =
            qs.iter().map(|q| q.full_signature()).collect();
        assert!(sigs.len() <= 4);
        assert!(sigs.len() >= 2, "pool should have variety");
        // Ids are unique.
        let ids: std::collections::HashSet<u64> = qs.iter().map(|q| q.id).collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn tpch_q1_is_scan_aggregate() {
        let q = tpch_q1(1);
        assert!(q.dims.is_empty());
        assert_eq!(q.aggs.len(), 5);
        assert_eq!(tpch_q1(2).full_signature(), q.full_signature());
    }

    #[test]
    fn mix_cycles_templates() {
        let qs = ssb_mix(9, 1);
        assert_eq!(qs.len(), 9);
        assert_eq!(qs[0].dims.len(), 1); // Q1.1
        assert_eq!(qs[1].dims.len(), 3); // Q2.1
        assert_eq!(qs[2].dims.len(), 3); // Q3.2
        // Q2.1 and Q3.2 differ structurally.
        assert_ne!(qs[1].dims[0].dim, qs[2].dims[0].dim);
    }

    #[test]
    fn q1_1_and_q2_1_bind_against_schemas() {
        // Just ensure column names resolve (bind panics otherwise).
        use workshare_common::bind::bind;
        let mut r = rng(4);
        let q = ssb_q1_1(1, &mut r);
        let b = bind(
            &lineorder_schema(),
            &[&date_schema()],
            &q,
        );
        assert_eq!(b.joined_arity, 1 + 2); // fk + price + discount
        let q2 = ssb_q2_1(1, &mut r);
        let b2 = bind(
            &lineorder_schema(),
            &[&part_schema(), &supplier_schema(), &date_schema()],
            &q2,
        );
        assert_eq!(b2.joined_arity, 3 + 1 + 2); // fks + lo_revenue + brand + year
    }
}
