//! Bounded-admission slot accounting: the compare-and-swap pair behind
//! [`Engine::try_submit`](crate::Engine::try_submit)'s queue cap, extracted
//! so the deterministic interleaving checker (`tests/interleave_core.rs`)
//! can explore it exhaustively. The engine claims one slot in the engine-wide
//! outstanding count and one in the tenant's weighted share; failure of the
//! second rolls the first back, and the RAII [`SlotPermit`] releases both.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build swaps
//! the atomics for the model-checked shim.

use workshare_common::sync::{Arc, AtomicU64, Ordering};

use crate::config::MAX_TENANTS;

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
/// Each deliberately breaks one step of the claim/release protocol so the
/// model checker can prove it would catch the regression.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Skip the engine-wide rollback when the tenant claim fails — the
    /// historical bug shape this module's rollback exists to prevent:
    /// shed submissions leak queue slots until the cap wedges shut.
    LeakOnTenantFull,
    /// Claim the engine-wide slot with a blind `fetch_add` instead of the
    /// guarded `fetch_update`: concurrent submitters overshoot the cap.
    BlindIncrement,
}

/// The bounded admission queue's occupancy: the engine-wide outstanding
/// count plus each tenant's slice of it.
pub struct ServiceSlots {
    /// Queries admitted and not yet completed, engine-wide. The queue cap
    /// is enforced by CAS on this counter ([`ServiceSlots::try_claim`]).
    outstanding: AtomicU64,
    /// Per-tenant slice of `outstanding` for the weighted per-tenant caps.
    tenant_outstanding: [AtomicU64; MAX_TENANTS],
    #[cfg(interleave)]
    mutation: SlotMutation,
}

impl ServiceSlots {
    /// Fresh, empty occupancy counters.
    pub fn new() -> Arc<ServiceSlots> {
        Arc::new(ServiceSlots {
            outstanding: AtomicU64::new(0),
            tenant_outstanding: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(interleave)]
            mutation: SlotMutation::None,
        })
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`SlotMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: SlotMutation) -> Arc<ServiceSlots> {
        Arc::new(ServiceSlots {
            outstanding: AtomicU64::new(0),
            tenant_outstanding: std::array::from_fn(|_| AtomicU64::new(0)),
            mutation,
        })
    }

    /// Current engine-wide occupancy.
    pub fn outstanding(&self) -> u64 {
        // Acquire pairs with the AcqRel RMWs below so a reader that
        // observes a count also observes the claims it summarizes; the
        // count itself is only advisory (reports, tests).
        self.outstanding.load(Ordering::Acquire)
    }

    /// Current occupancy of `tenant` (callers fold ids ≥ [`MAX_TENANTS`]).
    pub fn tenant_outstanding(&self, tenant: usize) -> u64 {
        self.tenant_outstanding[tenant.min(MAX_TENANTS - 1)].load(Ordering::Acquire)
    }

    /// Claim one slot for `tenant`, or `None` when the engine cap or the
    /// tenant's cap is full (the `SimQueue::try_push` shape:
    /// reserve-or-reject, never block).
    ///
    /// Ordering invariants, checked by `tests/interleave_core.rs`:
    ///
    /// * Both claims are guarded `fetch_update` CAS loops (AcqRel on
    ///   success, Acquire on the read): concurrent claimants cannot
    ///   overshoot either cap, because every increment re-validates against
    ///   the latest value — a blind `fetch_add` would admit `cap + N - 1`
    ///   queries under N racing submitters.
    /// * A tenant-cap failure **must** roll the engine-wide claim back
    ///   (`fetch_sub`) before reporting rejection; otherwise every shed
    ///   request from a saturated tenant permanently leaks one engine slot
    ///   and the queue wedges shut for all tenants.
    /// * AcqRel on the rollback/release pairs the decrement with the claim
    ///   it undoes, so a subsequent claimant that observes the freed slot
    ///   also observes everything the releasing thread did before freeing
    ///   it.
    pub fn try_claim(
        self: &Arc<Self>,
        cap: u64,
        tenant: usize,
        tenant_cap: u64,
    ) -> Option<SlotPermit> {
        #[cfg(interleave)]
        if self.mutation == SlotMutation::BlindIncrement {
            if self.outstanding.fetch_add(1, Ordering::AcqRel) >= cap {
                self.outstanding.fetch_sub(1, Ordering::AcqRel);
                return None;
            }
            let tenant = tenant.min(MAX_TENANTS - 1);
            self.tenant_outstanding[tenant].fetch_add(1, Ordering::AcqRel);
            return Some(SlotPermit {
                slots: Arc::clone(self),
                tenant,
            });
        }
        if self
            .outstanding
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |o| {
                (o < cap).then_some(o + 1)
            })
            .is_err()
        {
            return None;
        }
        let tenant = tenant.min(MAX_TENANTS - 1);
        if self.tenant_outstanding[tenant]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |o| {
                (o < tenant_cap).then_some(o + 1)
            })
            .is_err()
        {
            // Roll the engine-wide claim back: the tenant's weighted share
            // is exhausted even though the queue as a whole has room.
            #[cfg(interleave)]
            if self.mutation == SlotMutation::LeakOnTenantFull {
                return None; // deliberately leak the engine-wide slot
            }
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(SlotPermit {
            slots: Arc::clone(self),
            tenant,
        })
    }
}

/// RAII claim on the bounded admission queue: one admitted query's slot in
/// the engine-wide outstanding count and its tenant's count. Released on
/// drop — the permit rides inside the query's completion closure, so normal
/// completion, error completion, and a panicking producer (vthread closures
/// unwind) all free the slot.
pub struct SlotPermit {
    slots: Arc<ServiceSlots>,
    tenant: usize,
}

impl Drop for SlotPermit {
    fn drop(&mut self) {
        // AcqRel: pairs with the claim CAS (see `try_claim` invariants).
        self.slots.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.slots.tenant_outstanding[self.tenant].fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_up_to_cap_then_rejects() {
        let slots = ServiceSlots::new();
        let a = slots.try_claim(2, 0, 2).expect("first slot");
        let _b = slots.try_claim(2, 0, 2).expect("second slot");
        assert!(slots.try_claim(2, 0, 2).is_none(), "cap reached");
        assert_eq!(slots.outstanding(), 2);
        drop(a);
        assert_eq!(slots.outstanding(), 1);
        let _c = slots.try_claim(2, 0, 2).expect("slot freed by drop");
    }

    #[test]
    fn tenant_cap_failure_rolls_back_the_engine_claim() {
        let slots = ServiceSlots::new();
        let _a = slots.try_claim(4, 0, 1).expect("tenant 0 first");
        // Tenant 0 is at its cap; the engine-wide count must not leak.
        assert!(slots.try_claim(4, 0, 1).is_none());
        assert_eq!(slots.outstanding(), 1, "rejected claim fully rolled back");
        assert_eq!(slots.tenant_outstanding(0), 1);
        // Another tenant still gets in.
        let _b = slots.try_claim(4, 1, 1).expect("tenant 1 unaffected");
    }

    #[test]
    fn tenant_ids_fold_onto_the_last_slot() {
        let slots = ServiceSlots::new();
        let p = slots.try_claim(4, MAX_TENANTS + 3, 2).expect("folded id");
        assert_eq!(slots.tenant_outstanding(MAX_TENANTS - 1), 1);
        drop(p);
        assert_eq!(slots.tenant_outstanding(MAX_TENANTS - 1), 0);
    }
}
