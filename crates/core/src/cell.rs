//! One-shot completion cell: the publish-then-flag protocol behind
//! [`SlotResult`](crate::ticket::SlotResult), extracted so the deterministic
//! interleaving checker (`tests/interleave_core.rs`) can race a completing
//! producer, a poisoning error path (the [`CompletionGuard`]'s drop), and a
//! polling waiter exhaustively.
//!
//! Protocol invariants, checked by the model:
//!
//! * First write wins: exactly one of `complete` / `complete_error` claims
//!   the cell; the loser is a no-op. (This is slightly stronger than the
//!   pre-extraction `SlotResult`, whose `complete` overwrote blindly — the
//!   hardening closes a complete-vs-complete-error overwrite window that
//!   production call sites never exercised but the model flags.)
//! * The outcome is published *before* the `done` flag is released, so a
//!   waiter that observes `done == true` (Acquire) always finds the value
//!   or the error — never an empty claimed cell.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build swaps
//! the primitives for the model-checked shim.
//!
//! [`CompletionGuard`]: crate::ticket::CompletionGuard

use workshare_common::sync::{AtomicBool, Mutex, Ordering};

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
/// Each deliberately breaks one step of the completion protocol so the
/// model checker can prove it would catch the regression.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Release the `done` flag *before* publishing the value: a waiter can
    /// observe a claimed-but-empty cell.
    FlagBeforeValue,
    /// `complete_error` skips the claim and writes blindly: a racing error
    /// path (e.g. a completion guard dropping) poisons a result that was
    /// already published successfully.
    BlindErrorOverwrite,
}

/// A write-once result cell. `T` is the success payload; errors carry a
/// message. All methods take `&self`; share it behind an `Arc`.
pub struct CompletionCell<T> {
    /// Writer election: CAS'd false→true by the winning completer.
    claimed: AtomicBool,
    value: Mutex<Option<T>>,
    error: Mutex<Option<String>>,
    /// Publication flag: released only after the outcome is in place.
    done: AtomicBool,
    #[cfg(interleave)]
    mutation: CellMutation,
}

impl<T> CompletionCell<T> {
    /// New pending cell.
    pub fn new() -> Self {
        CompletionCell {
            claimed: AtomicBool::new(false),
            value: Mutex::new(None),
            error: Mutex::new(None),
            done: AtomicBool::new(false),
            #[cfg(interleave)]
            mutation: CellMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`CellMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: CellMutation) -> Self {
        CompletionCell {
            claimed: AtomicBool::new(false),
            value: Mutex::new(None),
            error: Mutex::new(None),
            done: AtomicBool::new(false),
            mutation,
        }
    }

    /// CAS claim of the single completion. AcqRel success: the winner's
    /// subsequent value publish happens-after any prior state it must see;
    /// the loser's Acquire failure load pairs with the winner's release so
    /// a losing error path can rely on the outcome being (or becoming)
    /// visible.
    fn claim(&self) -> bool {
        self.claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Publish the success value. Returns whether this call won the cell
    /// (a `false` means another completion got there first and this value
    /// was discarded).
    pub fn complete(&self, value: T) -> bool {
        if !self.claim() {
            return false;
        }
        #[cfg(interleave)]
        if self.mutation == CellMutation::FlagBeforeValue {
            self.done.store(true, Ordering::Release);
            *self.value.lock() = Some(value);
            return true;
        }
        *self.value.lock() = Some(value);
        // Release: pairs with the waiter's Acquire load of `done`, making
        // the value publish above visible before "done" is observable.
        self.done.store(true, Ordering::Release);
        true
    }

    /// Poison the cell with an error. Returns whether this call won the
    /// cell. Used when a producer sheds, fails to bind, or abandons the
    /// cell by panicking (the completion guard's drop).
    pub fn complete_error(&self, msg: impl Into<String>) -> bool {
        #[cfg(interleave)]
        if self.mutation == CellMutation::BlindErrorOverwrite {
            *self.error.lock() = Some(msg.into());
            self.done.store(true, Ordering::Release);
            return true;
        }
        if !self.claim() {
            return false;
        }
        *self.error.lock() = Some(msg.into());
        self.done.store(true, Ordering::Release);
        true
    }

    /// Whether an outcome has been published.
    pub fn is_done(&self) -> bool {
        // Acquire: pairs with the completer's Release store, so a `true`
        // here guarantees `try_outcome` finds the published outcome.
        self.done.load(Ordering::Acquire)
    }

    /// The poisoning error, if the cell was completed with one.
    pub fn error(&self) -> Option<String> {
        self.error.lock().clone()
    }
}

impl<T: Clone> CompletionCell<T> {
    /// The published outcome: `None` while pending, then `Ok(value)` or
    /// `Err(message)` forever after.
    ///
    /// Panics if the `done` flag is set with neither a value nor an error
    /// published — the broken-protocol state the publish-before-flag
    /// invariant exists to rule out (production code reaches this as
    /// `expect("done without rows")`).
    pub fn try_outcome(&self) -> Option<Result<T, String>> {
        if !self.is_done() {
            return None;
        }
        if let Some(msg) = self.error.lock().clone() {
            return Some(Err(msg));
        }
        let value = self
            .value
            .lock()
            .clone()
            .expect("completion flag set without a published outcome");
        Some(Ok(value))
    }
}

impl<T> Default for CompletionCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_then_value() {
        let cell: CompletionCell<u64> = CompletionCell::new();
        assert!(!cell.is_done());
        assert_eq!(cell.try_outcome(), None);
        assert!(cell.complete(42));
        assert!(cell.is_done());
        assert_eq!(cell.try_outcome(), Some(Ok(42)));
        assert!(cell.error().is_none());
    }

    #[test]
    fn first_write_wins_value_then_error() {
        let cell: CompletionCell<u64> = CompletionCell::new();
        assert!(cell.complete(7));
        assert!(!cell.complete_error("late poison"), "loser is a no-op");
        assert_eq!(cell.try_outcome(), Some(Ok(7)));
        assert!(cell.error().is_none());
    }

    #[test]
    fn first_write_wins_error_then_value() {
        let cell: CompletionCell<u64> = CompletionCell::new();
        assert!(cell.complete_error("bind failed"));
        assert!(!cell.complete(7));
        assert_eq!(cell.try_outcome(), Some(Err("bind failed".to_string())));
    }
}
