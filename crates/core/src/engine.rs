//! Unified engine facade over the three execution paths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use workshare_cjoin::CjoinStage;
use workshare_common::bind::bind;
use workshare_common::{CostModel, StarQuery};
use workshare_qpipe::QpipeEngine;
use workshare_sim::{CostKind, Machine, WaitSet};
use workshare_storage::StorageManager;

use crate::config::{NamedConfig, RunConfig};
use crate::ticket::{SlotResult, Ticket};
use crate::volcano::run_volcano_query;

enum EngineKind {
    Qpipe(QpipeEngine),
    Cjoin(CjoinStage),
    Volcano,
}

struct EngineInner {
    machine: Machine,
    storage: StorageManager,
    cost: CostModel,
    shared_agg: bool,
    kind: EngineKind,
    gate_ws: WaitSet,
    gate_open: Arc<AtomicBool>,
}

/// An engine instance bound to one machine and one mounted database.
/// Cheap to clone.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build the engine selected by `config` over an already mounted
    /// storage manager. `fact_table` names the CJOIN stage's fact table
    /// (ignored by the other engines).
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        config: &RunConfig,
        fact_table: &str,
    ) -> Engine {
        let kind = match config.engine {
            NamedConfig::Qpipe | NamedConfig::QpipeCs | NamedConfig::QpipeSp => {
                EngineKind::Qpipe(QpipeEngine::new(
                    machine,
                    storage,
                    config.qpipe_config(),
                    config.cost,
                ))
            }
            NamedConfig::Cjoin | NamedConfig::CjoinSp => EngineKind::Cjoin(
                CjoinStage::new(machine, storage, fact_table, config.cjoin_config(), config.cost),
            ),
            NamedConfig::Volcano => EngineKind::Volcano,
        };
        Engine {
            inner: Arc::new(EngineInner {
                machine: machine.clone(),
                storage: storage.clone(),
                cost: config.cost,
                shared_agg: config.cjoin_shared_agg,
                kind,
                gate_ws: WaitSet::new(machine),
                gate_open: Arc::new(AtomicBool::new(true)),
            }),
        }
    }

    /// The machine this engine runs on.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The mounted storage manager.
    pub fn storage(&self) -> &StorageManager {
        &self.inner.storage
    }

    /// Hold all per-query work at the start line (batch semantics).
    pub fn close_gate(&self) {
        self.inner.gate_open.store(false, Ordering::Release);
        if let EngineKind::Qpipe(e) = &self.inner.kind {
            e.close_gate();
        }
    }

    /// Release the start line.
    pub fn open_gate(&self) {
        self.inner.gate_open.store(true, Ordering::Release);
        self.inner.gate_ws.notify_all();
        if let EngineKind::Qpipe(e) = &self.inner.kind {
            e.open_gate();
        }
    }

    /// Submit a query; returns a [`Ticket`].
    pub fn submit(&self, q: &StarQuery) -> Ticket {
        let inner = &self.inner;
        match &inner.kind {
            EngineKind::Qpipe(e) => Ticket::Qpipe(e.submit(q)),
            EngineKind::Cjoin(stage) => {
                if inner.shared_agg {
                    // DataPath extension: the distributor aggregates in
                    // place; adapt the stage's buffered result to a Ticket.
                    let slot = SlotResult::new(&inner.machine, inner.machine.now_ns());
                    let agg = stage.submit_aggregated(q);
                    let slot2 = Arc::clone(&slot);
                    inner.machine.spawn(&format!("cj-sagg-q{}", q.id), move |ctx| {
                        let rows = agg.wait();
                        slot2.complete(rows, ctx.machine().now_ns());
                    });
                    return Ticket::Slot(slot);
                }
                // CJOIN evaluates the joins; a query-centric aggregation
                // packet sits on top (paper §3.2: "subsequent operators in a
                // query plan, e.g. aggregations or sorts, are query-centric").
                let slot = SlotResult::new(&inner.machine, inner.machine.now_ns());
                let mut output = stage.submit(q);
                let fact_schema = inner.storage.schema(inner.storage.table(&q.fact));
                let dim_schemas: Vec<_> = q
                    .dims
                    .iter()
                    .map(|d| inner.storage.schema(inner.storage.table(&d.dim)))
                    .collect();
                let dim_refs: Vec<&workshare_common::Schema> =
                    dim_schemas.iter().map(|s| s.as_ref()).collect();
                let bound = bind(&fact_schema, &dim_refs, q);
                let order = q.order_by.clone();
                let cost = inner.cost;
                let slot2 = Arc::clone(&slot);
                let gate_ws = inner.gate_ws.clone();
                let gate_open = Arc::clone(&inner.gate_open);
                inner.machine.spawn(&format!("cj-agg-q{}", q.id), move |ctx| {
                    if !gate_open.load(Ordering::Acquire) {
                        gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
                    }
                    let mut agg = workshare_common::agg::Aggregator::new(&bound);
                    while let Some(batch) = output.reader.next(ctx) {
                        ctx.charge(
                            CostKind::Aggregation,
                            cost.agg_update_tuple_ns * batch.len() as f64,
                        );
                        for row in &batch.rows {
                            agg.update(row);
                        }
                    }
                    let groups = agg.group_count();
                    ctx.charge(
                        CostKind::Aggregation,
                        cost.agg_group_output_ns * groups as f64,
                    );
                    if !order.is_empty() {
                        ctx.charge(CostKind::Sort, cost.sort_cost(groups));
                    }
                    let rows = agg.finish(&order);
                    slot2.complete(Arc::new(rows), ctx.machine().now_ns());
                });
                Ticket::Slot(slot)
            }
            EngineKind::Volcano => {
                let slot = SlotResult::new(&inner.machine, inner.machine.now_ns());
                let slot2 = Arc::clone(&slot);
                let storage = inner.storage.clone();
                let cost = inner.cost;
                let q = q.clone();
                let gate_ws = inner.gate_ws.clone();
                let gate_open = Arc::clone(&inner.gate_open);
                inner.machine.spawn(&format!("volcano-q{}", q.id), move |ctx| {
                    if !gate_open.load(Ordering::Acquire) {
                        gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
                    }
                    let rows = run_volcano_query(ctx, &storage, &q, &cost);
                    slot2.complete(Arc::new(rows), ctx.machine().now_ns());
                });
                Ticket::Slot(slot)
            }
        }
    }

    /// Sharing statistics from the QPipe path, if applicable.
    pub fn qpipe_sharing(&self) -> Option<workshare_qpipe::SharingStats> {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => Some(e.sharing_stats()),
            _ => None,
        }
    }

    /// CJOIN stage statistics, if applicable.
    pub fn cjoin_stats(&self) -> Option<workshare_cjoin::CjoinStats> {
        match &self.inner.kind {
            EngineKind::Cjoin(s) => Some(s.stats()),
            _ => None,
        }
    }

    /// Stop background services (shared scanners, CJOIN pipeline).
    pub fn shutdown(&self) {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.shutdown(),
            EngineKind::Cjoin(s) => s.shutdown(),
            EngineKind::Volcano => {}
        }
    }
}
