//! Unified engine facade over the execution paths, including the governed
//! engine that routes each submission between query-centric and shared
//! execution ([`ExecPolicy`], [`crate::governor::SharingGovernor`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use workshare_cjoin::CjoinStage;
use workshare_common::bind::bind;
use workshare_common::{CostModel, SharingSignals, StarQuery};
use workshare_qpipe::QpipeEngine;
use workshare_sim::{CostKind, Machine, WaitSet};
use workshare_storage::{StorageManager, TableId};

use crate::config::{ExecPolicy, NamedConfig, RunConfig};
use crate::governor::{GovernorStats, Route, SharingGovernor};
use crate::ticket::{SlotResult, Ticket};
use crate::volcano::run_volcano_query;

/// The governed engine: both execution paths plus the router between them.
struct Governed {
    policy: ExecPolicy,
    /// Shared star path (bound to the engine's fact table).
    stage: CjoinStage,
    /// Shared path for non-star queries and foreign fact tables (circular
    /// scans + SP on).
    qpipe: QpipeEngine,
    governor: Arc<SharingGovernor>,
    /// Queries submitted through this engine and not yet completed — the
    /// governor's concurrency signal (tracked in Adaptive mode).
    in_flight: Arc<AtomicU64>,
    /// The CJOIN stage's fact table.
    fact: TableId,
    /// Virtual cores (saturation divisor of the query-centric estimate).
    cores: f64,
    /// CJOIN filter workers (parallelism divisor of the shared estimate).
    pipeline_parallelism: f64,
    /// Sequential disk bandwidth, bytes per virtual second; 0 when the
    /// database is memory-resident (no I/O terms in the estimates).
    disk_bandwidth: f64,
}

enum EngineKind {
    Qpipe(QpipeEngine),
    Cjoin(CjoinStage),
    Volcano,
    Governed(Governed),
}

struct EngineInner {
    machine: Machine,
    storage: StorageManager,
    cost: CostModel,
    shared_agg: bool,
    kind: EngineKind,
    gate_ws: WaitSet,
    gate_open: Arc<AtomicBool>,
}

/// Observed-latency feedback plumbing of one adaptive submission: completes
/// back into the governor (and the in-flight counter) when the query does,
/// carrying the exact signals the routing decision was based on.
struct RouteFeedback {
    governor: Arc<SharingGovernor>,
    route: Route,
    signals: SharingSignals,
    in_flight: Arc<AtomicU64>,
}

impl RouteFeedback {
    fn complete(&self, latency_secs: f64) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.governor
            .observe_latency(self.route, latency_secs, &self.signals);
    }
}

/// An engine instance bound to one machine and one mounted database.
/// Cheap to clone.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build the engine selected by `config` over an already mounted
    /// storage manager. `fact_table` names the CJOIN stage's fact table
    /// (ignored by the other engines). With [`RunConfig::policy`] set, both
    /// paths are built and submissions are routed per the policy.
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        config: &RunConfig,
        fact_table: &str,
    ) -> Engine {
        let kind = match config.policy {
            Some(policy) => EngineKind::Governed(Governed {
                policy,
                stage: CjoinStage::new(
                    machine,
                    storage,
                    fact_table,
                    config.cjoin_config(),
                    config.cost,
                ),
                qpipe: QpipeEngine::new(
                    machine,
                    storage,
                    config.governed_qpipe_config(),
                    config.cost,
                ),
                governor: Arc::new(SharingGovernor::new(config.cost, config.governor)),
                in_flight: Arc::new(AtomicU64::new(0)),
                fact: storage.table(fact_table),
                cores: config.cores as f64,
                pipeline_parallelism: config.cjoin_config().n_workers.max(1) as f64,
                disk_bandwidth: if config.io_mode == workshare_storage::IoMode::Memory {
                    0.0
                } else {
                    config.disk.bandwidth_bytes_per_sec
                },
            }),
            None => match config.engine {
                NamedConfig::Qpipe | NamedConfig::QpipeCs | NamedConfig::QpipeSp => {
                    EngineKind::Qpipe(QpipeEngine::new(
                        machine,
                        storage,
                        config.qpipe_config(),
                        config.cost,
                    ))
                }
                NamedConfig::Cjoin | NamedConfig::CjoinSp => EngineKind::Cjoin(
                    CjoinStage::new(machine, storage, fact_table, config.cjoin_config(), config.cost),
                ),
                NamedConfig::Volcano => EngineKind::Volcano,
            },
        };
        Engine {
            inner: Arc::new(EngineInner {
                machine: machine.clone(),
                storage: storage.clone(),
                cost: config.cost,
                shared_agg: config.cjoin_shared_agg,
                kind,
                gate_ws: WaitSet::new(machine),
                gate_open: Arc::new(AtomicBool::new(true)),
            }),
        }
    }

    /// The machine this engine runs on.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The mounted storage manager.
    pub fn storage(&self) -> &StorageManager {
        &self.inner.storage
    }

    /// Hold all per-query work at the start line (batch semantics).
    pub fn close_gate(&self) {
        self.inner.gate_open.store(false, Ordering::Release);
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.close_gate(),
            EngineKind::Governed(g) => g.qpipe.close_gate(),
            _ => {}
        }
    }

    /// Release the start line.
    pub fn open_gate(&self) {
        self.inner.gate_open.store(true, Ordering::Release);
        self.inner.gate_ws.notify_all();
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.open_gate(),
            EngineKind::Governed(g) => g.qpipe.open_gate(),
            _ => {}
        }
    }

    /// Submit a query; returns a [`Ticket`].
    pub fn submit(&self, q: &StarQuery) -> Ticket {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => Ticket::Qpipe(e.submit(q)),
            EngineKind::Cjoin(stage) => self.submit_cjoin(stage, q, None),
            EngineKind::Volcano => self.submit_volcano(q, None),
            EngineKind::Governed(g) => self.submit_governed(g, q),
        }
    }

    /// Live cost-model signals for routing `q`: catalog cardinalities plus
    /// the CJOIN stage's observed selectivity / key-run / concurrency.
    fn live_signals(&self, g: &Governed, q: &StarQuery) -> SharingSignals {
        let storage = &self.inner.storage;
        let fact_tuples = storage.row_count(storage.table(&q.fact)) as f64;
        let dim_tuples: f64 = q
            .dims
            .iter()
            .map(|d| storage.row_count(storage.table(&d.dim)) as f64)
            .sum();
        let rt = g.stage.runtime_stats();
        let cold = SharingSignals::cold(fact_tuples, dim_tuples, q.dims.len());
        SharingSignals {
            dim_selectivity: rt.dim_selectivity.unwrap_or(cold.dim_selectivity),
            avg_key_run: rt.avg_key_run,
            // The governor sees load from both paths (its own in-flight
            // count) and from the GQP (queries admitted by earlier
            // submissions that are still wrapping).
            concurrency: (g.in_flight.load(Ordering::Acquire) as f64)
                .max(rt.active_queries as f64),
            cores: g.cores,
            pipeline_parallelism: g.pipeline_parallelism,
            fact_bytes: storage.table_bytes(storage.table(&q.fact)) as f64,
            disk_bandwidth_bytes_per_sec: g.disk_bandwidth,
            ..cold
        }
    }

    fn submit_governed(&self, g: &Governed, q: &StarQuery) -> Ticket {
        let is_star =
            !q.dims.is_empty() && self.inner.storage.table(&q.fact) == g.fact;
        // One signals snapshot per submission: the decision, the recorded
        // route, and the later calibration feedback all see the same state.
        let signals =
            (g.policy == ExecPolicy::Adaptive).then(|| self.live_signals(g, q));
        let route = match g.policy {
            ExecPolicy::QueryCentric => {
                g.governor.record_forced(Route::QueryCentric);
                Route::QueryCentric
            }
            ExecPolicy::Shared => {
                g.governor.record_forced(Route::Shared);
                Route::Shared
            }
            // Non-star queries can't enter the GQP; they are still routed by
            // the governor — the shared side just lands on QPipe below.
            ExecPolicy::Adaptive => g.governor.decide(signals.as_ref().unwrap()),
        };
        let feedback = signals.map(|signals| {
            g.in_flight.fetch_add(1, Ordering::AcqRel);
            RouteFeedback {
                governor: Arc::clone(&g.governor),
                route,
                signals,
                in_flight: Arc::clone(&g.in_flight),
            }
        });
        match route {
            Route::QueryCentric => self.submit_volcano(q, feedback),
            Route::Shared if is_star => self.submit_cjoin(&g.stage, q, feedback),
            Route::Shared => {
                let handle = g.qpipe.submit(q);
                if let Some(fb) = feedback {
                    let h = handle.clone();
                    self.inner.machine.spawn(&format!("gov-obs-q{}", q.id), move |_| {
                        h.wait();
                        fb.complete(h.latency_secs());
                    });
                }
                Ticket::Qpipe(handle)
            }
        }
    }

    /// Run `q` on the CJOIN stage: the joins are shared; a query-centric
    /// aggregation packet sits on top (paper §3.2: "subsequent operators in
    /// a query plan, e.g. aggregations or sorts, are query-centric") —
    /// unless `shared_agg` folds aggregation into the distributor.
    fn submit_cjoin(
        &self,
        stage: &CjoinStage,
        q: &StarQuery,
        feedback: Option<RouteFeedback>,
    ) -> Ticket {
        let inner = &self.inner;
        let start_ns = inner.machine.now_ns();
        if inner.shared_agg {
            // DataPath extension: the distributor aggregates in place;
            // adapt the stage's buffered result to a Ticket.
            let slot = SlotResult::new(&inner.machine, start_ns);
            let agg = stage.submit_aggregated(q);
            let slot2 = Arc::clone(&slot);
            inner.machine.spawn(&format!("cj-sagg-q{}", q.id), move |ctx| {
                let rows = agg.wait();
                let now = ctx.machine().now_ns();
                slot2.complete(rows, now);
                if let Some(fb) = &feedback {
                    fb.complete((now - start_ns) / 1e9);
                }
            });
            return Ticket::Slot(slot);
        }
        let slot = SlotResult::new(&inner.machine, start_ns);
        let mut output = stage.submit(q);
        let fact_schema = inner.storage.schema(inner.storage.table(&q.fact));
        let dim_schemas: Vec<_> = q
            .dims
            .iter()
            .map(|d| inner.storage.schema(inner.storage.table(&d.dim)))
            .collect();
        let dim_refs: Vec<&workshare_common::Schema> =
            dim_schemas.iter().map(|s| s.as_ref()).collect();
        let bound = bind(&fact_schema, &dim_refs, q);
        let order = q.order_by.clone();
        let cost = inner.cost;
        let slot2 = Arc::clone(&slot);
        let gate_ws = inner.gate_ws.clone();
        let gate_open = Arc::clone(&inner.gate_open);
        inner.machine.spawn(&format!("cj-agg-q{}", q.id), move |ctx| {
            if !gate_open.load(Ordering::Acquire) {
                gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
            }
            let mut agg = workshare_common::agg::Aggregator::new(&bound);
            while let Some(batch) = output.reader.next(ctx) {
                ctx.charge(
                    CostKind::Aggregation,
                    cost.agg_update_tuple_ns * batch.len() as f64,
                );
                for row in &batch.rows {
                    agg.update(row);
                }
            }
            let groups = agg.group_count();
            ctx.charge(
                CostKind::Aggregation,
                cost.agg_group_output_ns * groups as f64,
            );
            if !order.is_empty() {
                ctx.charge(CostKind::Sort, cost.sort_cost(groups));
            }
            let rows = agg.finish(&order);
            let now = ctx.machine().now_ns();
            slot2.complete(Arc::new(rows), now);
            if let Some(fb) = &feedback {
                fb.complete((now - start_ns) / 1e9);
            }
        });
        Ticket::Slot(slot)
    }

    /// Run `q` on a private Volcano-style plan on its own vthread.
    fn submit_volcano(&self, q: &StarQuery, feedback: Option<RouteFeedback>) -> Ticket {
        let inner = &self.inner;
        let start_ns = inner.machine.now_ns();
        let slot = SlotResult::new(&inner.machine, start_ns);
        let slot2 = Arc::clone(&slot);
        let storage = inner.storage.clone();
        let cost = inner.cost;
        let q = q.clone();
        let gate_ws = inner.gate_ws.clone();
        let gate_open = Arc::clone(&inner.gate_open);
        inner.machine.spawn(&format!("volcano-q{}", q.id), move |ctx| {
            if !gate_open.load(Ordering::Acquire) {
                gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
            }
            let rows = run_volcano_query(ctx, &storage, &q, &cost);
            let now = ctx.machine().now_ns();
            slot2.complete(Arc::new(rows), now);
            if let Some(fb) = &feedback {
                fb.complete((now - start_ns) / 1e9);
            }
        });
        Ticket::Slot(slot)
    }

    /// Sharing statistics from the QPipe path, if applicable.
    pub fn qpipe_sharing(&self) -> Option<workshare_qpipe::SharingStats> {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => Some(e.sharing_stats()),
            EngineKind::Governed(g) => Some(g.qpipe.sharing_stats()),
            _ => None,
        }
    }

    /// CJOIN stage statistics, if applicable.
    pub fn cjoin_stats(&self) -> Option<workshare_cjoin::CjoinStats> {
        match &self.inner.kind {
            EngineKind::Cjoin(s) => Some(s.stats()),
            EngineKind::Governed(g) => Some(g.stage.stats()),
            _ => None,
        }
    }

    /// Routing statistics of the governed engine, if applicable.
    pub fn governor_stats(&self) -> Option<GovernorStats> {
        match &self.inner.kind {
            EngineKind::Governed(g) => Some(g.governor.stats()),
            _ => None,
        }
    }

    /// Stop background services (shared scanners, CJOIN pipeline).
    pub fn shutdown(&self) {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.shutdown(),
            EngineKind::Cjoin(s) => s.shutdown(),
            EngineKind::Volcano => {}
            EngineKind::Governed(g) => {
                g.stage.shutdown();
                g.qpipe.shutdown();
            }
        }
    }
}
