//! Unified engine facade over the execution paths, including the governed
//! engine that routes each submission between query-centric and shared
//! execution ([`ExecPolicy`], [`crate::governor::SharingGovernor`]).
//!
//! Since the multi-fact sharding refactor the governed engine's shared side
//! is a stage registry: one [`CjoinStage`] **per fact table** referenced
//! by a star query, built lazily on first routing and torn down when its
//! last in-flight query completes. Star queries over *any* fact table enter
//! their fact's Global Query Plan; the QPipe fallback remains only for
//! genuinely non-star plans (zero dimension joins). Per-fact accounting is
//! surfaced as [`StageRow`]s.

use workshare_cjoin::{
    AdmissionFabric, AdmissionHealth, CjoinConfig, CjoinRuntimeStats, CjoinStage, CjoinStats,
    FabricStats, LadderRung,
};
use workshare_common::bind::try_bind;
use workshare_common::fxhash::FxHashMap;
// The concurrent core imports its primitives through the swappable sync
// layer: production builds get the same `std`/`parking_lot` types as
// before, `--cfg interleave` builds get the deterministic-model shim (see
// `workshare_common::sync` and docs/TESTING.md).
use workshare_common::sync::{Arc, AtomicBool, AtomicU64, Ordering};
use workshare_common::{CostModel, SharingSignals, StarQuery};
use workshare_qpipe::QpipeEngine;
use workshare_sim::{CostKind, Machine, WaitSet};
use workshare_storage::{StorageManager, TableId};

use crate::config::{ExecPolicy, NamedConfig, RunConfig, ServiceConfig};
use crate::governor::{GovernorStats, Route, SharingGovernor, SloDecision};
use crate::health::HealthStats;
use crate::lease::{LeaseRegistry, Leased};
use crate::slots::{ServiceSlots, SlotPermit};
use crate::ticket::{CompletionGuard, SlotResult, Ticket};
use crate::volcano::try_run_volcano_query;

/// Fault-site id of the engine's stage-build site in the seeded injection
/// schedule (storage uses 1–3, the cjoin admission layer 4–5).
const SITE_STAGE_BUILD: u64 = 6;

/// Virtual nanoseconds between health-monitor ticks while admission work is
/// outstanding. Two ticks bracket a wedged fabric well under the default
/// injected stall (8 ms), so a dark pool is demoted before a full stall
/// elapses.
const MONITOR_TICK_NS: f64 = 500_000.0;

/// Injected-fault / failed-batch delta within one monitor tick that demotes
/// the admission ladder one rung.
const MONITOR_FAULT_BURST: u64 = 2;

/// Consecutive ticks of pending fabric work with zero window progress
/// before the fabric is declared dark (demote + reclaim + respawn).
const MONITOR_STALL_TICKS: u32 = 2;

/// Consecutive clean ticks (no new faults, no stall) before the ladder is
/// promoted one rung back toward the top.
const MONITOR_PROMOTE_TICKS: u32 = 16;

/// Why a submission was shed by [`Engine::try_submit`] instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded admission queue (engine outstanding count, the tenant's
    /// weighted share of it, or the admission fabric's pending depth) was
    /// full.
    QueueFull,
    /// No route's predicted completion met the query's virtual deadline.
    Deadline,
}

impl ShedReason {
    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::Deadline => "deadline",
        }
    }
}

/// Result of a bounded submission ([`Engine::try_submit`]).
pub enum Outcome {
    /// The query was admitted; track it via the ticket.
    Admitted(Ticket),
    /// The query was shed at the door and never entered any queue.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
    },
}

/// Per-fact-table row of a governed run's shared side, surfaced in
/// [`RunReport::stages`](crate::harness::RunReport::stages): which stage
/// served how many shared star queries, with the stage's CJOIN counters.
/// Rows persist across stage teardown (idle stages are torn down and their
/// counters absorbed), so a report always covers every fact table that was
/// ever sharded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Fact table this stage is bound to.
    pub fact: String,
    /// Route label carrying the fact table, e.g. `Shared(lineorder)` — the
    /// label a shared query served by this stage is attributed to.
    pub label: String,
    /// Shared star queries served by this stage over the engine's lifetime.
    pub shared_queries: u64,
    /// Whether the stage was still running at report time (idle stages are
    /// torn down once their last in-flight query completes).
    pub live: bool,
    /// The stage's CJOIN counters (lifetime, including torn-down
    /// incarnations).
    pub stats: CjoinStats,
}

/// A fact table's stage as the lease registry's managed value: the
/// checkout / refcount / teardown lifecycle itself lives in
/// [`LeaseRegistry`] (model-checked by `tests/interleave_core.rs`); this
/// impl supplies the stage-specific pieces — identity, teardown, and the
/// retired-ledger absorb.
#[derive(Clone)]
struct FactStage {
    fact_name: String,
    stage: CjoinStage,
}

impl Leased for FactStage {
    type Retired = RetiredStage;

    fn same(&self, other: &Self) -> bool {
        CjoinStage::same_stage(&self.stage, &other.stage)
    }

    fn retire_into(&self, served: u64, cell: &mut RetiredStage) {
        cell.fact_name = self.fact_name.clone();
        cell.served += served;
        cell.stats.absorb(&self.stage.stats());
        cell.last_runtime = Some(self.stage.runtime_stats());
    }

    fn shutdown(&self) {
        self.stage.shutdown();
    }
}

/// Counters and last-observed signals of torn-down incarnations of a
/// fact's stage.
#[derive(Default)]
struct RetiredStage {
    fact_name: String,
    served: u64,
    stats: CjoinStats,
    /// Last runtime signals before teardown: the governor's selectivity /
    /// key-run EWMAs survive stage churn.
    last_runtime: Option<CjoinRuntimeStats>,
}

/// Lazily sharded CJOIN stages, one per fact table ([`StageRow`] docs).
/// All methods take `&self`; shared behind the engine's `Arc`.
struct StageRegistry {
    machine: Machine,
    storage: StorageManager,
    config: CjoinConfig,
    cost: CostModel,
    /// Engine-level cross-stage admission pool, shared by every stage this
    /// registry builds ([`RunConfig::admission_fabric`]); stages fall back
    /// to their own per-stage workers when `None`. The fabric outlives
    /// stage teardown — its workers hold no stage state between windows —
    /// and is shut down with the engine.
    fabric: Option<AdmissionFabric>,
    /// Stage lifecycle: lease-counted lazy checkout, teardown at refcount
    /// zero with counters absorbed into the retired ledger.
    leases: LeaseRegistry<TableId, FactStage>,
    /// Shared admission-health state (ladder rung + fault/recovery
    /// counters), present iff [`FaultPlan::heals`](crate::config::FaultPlan)
    /// — stages route pending batches by its live rung, the fabric runs
    /// supervised windows under it, and the health monitor drives it.
    health: Option<Arc<AdmissionHealth>>,
    /// Stride of the injected stage-build fault site
    /// ([`FaultPlan::stage_build_stride`](crate::config::FaultPlan)).
    stage_build_stride: Option<u64>,
    /// Injection tick of the stage-build site (one per actual build).
    stage_builds: AtomicU64,
    /// Builds that failed by injection: the carcass was quarantined through
    /// the retired ledger and the stage rebuilt.
    stage_rebuilds: AtomicU64,
    /// Wakes the health monitor when admission work appears (it blocks
    /// while no stage is live and the fabric is empty, so an idle engine's
    /// virtual clock never advances on monitor ticks).
    monitor_ws: WaitSet,
    /// Stops the health monitor (engine shutdown).
    monitor_stop: AtomicBool,
}

/// One shared star query's claim on its fact's stage: released on
/// completion; the stage is torn down when the last claim is released.
struct StageLease {
    registry: Arc<StageRegistry>,
    fact: TableId,
}

impl StageLease {
    fn release(&self) {
        self.registry.release(self.fact);
    }
}

impl StageRegistry {
    fn new(
        machine: &Machine,
        storage: &StorageManager,
        config: CjoinConfig,
        cost: CostModel,
        fabric: Option<AdmissionFabric>,
        health: Option<Arc<AdmissionHealth>>,
        stage_build_stride: Option<u64>,
    ) -> StageRegistry {
        StageRegistry {
            machine: machine.clone(),
            storage: storage.clone(),
            config,
            cost,
            fabric,
            leases: LeaseRegistry::new(),
            health,
            stage_build_stride,
            stage_builds: AtomicU64::new(0),
            stage_rebuilds: AtomicU64::new(0),
            monitor_ws: WaitSet::new(machine),
            monitor_stop: AtomicBool::new(false),
        }
    }

    /// Build one stage pipeline over `fact_name` (the lease registry's
    /// build closure).
    fn build_stage(&self, fact_name: &str) -> FactStage {
        FactStage {
            fact_name: fact_name.to_string(),
            stage: CjoinStage::with_admission(
                &self.machine,
                &self.storage,
                fact_name,
                self.config,
                self.cost,
                self.fabric.clone(),
                self.health.clone(),
            ),
        }
    }

    /// The stage for `fact`, built lazily on first use; registers one
    /// in-flight query on it. The returned stage stays valid until the
    /// matching [`StageLease::release`] (stages are only torn down at
    /// refcount zero). The stage pipeline is constructed *outside* the
    /// registry lock ([`LeaseRegistry::checkout`]'s double-checked insert)
    /// so that routing and signal reads for other facts never stall behind
    /// a stage build; a racing duplicate build loses the insert and is
    /// shut down.
    fn checkout(self: &Arc<Self>, fact: TableId, fact_name: &str) -> (CjoinStage, StageLease) {
        let lease = StageLease {
            registry: Arc::clone(self),
            fact,
        };
        let mut built = false;
        let fs = self.leases.checkout(fact, || {
            built = true;
            self.build_stage(fact_name)
        });
        // The health monitor parks while no stage is live; a checkout is
        // the arrival of admission work.
        self.monitor_ws.notify_all();
        if built {
            let tick = self.stage_builds.fetch_add(1, Ordering::Relaxed);
            // Injected stage-build failure: the fresh pipeline is treated
            // as a bad build — quarantined through the lease registry's
            // retired ledger exactly like a torn-down incarnation (release
            // at refcount one retires its counters and shuts it down) —
            // and the stage is rebuilt. A concurrent checkout that already
            // holds a lease suppresses the fault (the incumbent build is
            // proven good). This site recovers regardless of `self_heal`:
            // the failure is synchronous and rebuild is its only sane
            // continuation.
            if self
                .config
                .faults
                .fires(SITE_STAGE_BUILD, self.stage_build_stride, tick)
            {
                self.leases.release(fact);
                self.stage_rebuilds.fetch_add(1, Ordering::Relaxed);
                let fs2 = self.leases.checkout(fact, || self.build_stage(fact_name));
                return (fs2.stage, lease);
            }
        }
        (fs.stage, lease)
    }

    /// Whether the health monitor has anything to watch: a live stage or
    /// queued fabric work.
    fn monitor_idle(&self) -> bool {
        let mut live = 0usize;
        self.leases.for_each_live(|_, _| live += 1);
        live == 0 && self.fabric_pending() == 0
    }

    /// Spawn the self-healing monitor vthread: while admission work is
    /// outstanding it ticks every [`MONITOR_TICK_NS`], demoting the
    /// fabric → pool → serial ladder on fault bursts, detecting a dark
    /// fabric (pending work, zero window progress) and answering it with
    /// reclaim + a replacement worker, and promoting back toward the top
    /// after a clean window. Parks on [`StageRegistry::monitor_ws`] while
    /// idle so it never advances the virtual clock of a quiet engine.
    fn spawn_health_monitor(self: &Arc<Self>, health: Arc<AdmissionHealth>) {
        let registry = Arc::clone(self);
        let top = if registry.fabric.is_some() {
            LadderRung::Fabric
        } else {
            LadderRung::Pool
        };
        self.machine.clone().spawn("health-monitor", move |ctx| {
            let mut last_score = 0u64;
            let mut last_windows = 0u64;
            let mut stall_ticks = 0u32;
            let mut clean_ticks = 0u32;
            loop {
                if registry.monitor_stop.load(Ordering::Acquire) {
                    return;
                }
                if registry.monitor_idle() {
                    registry.monitor_ws.wait_until(|| {
                        registry.monitor_stop.load(Ordering::Acquire)
                            || !registry.monitor_idle()
                    });
                    continue;
                }
                ctx.sleep(MONITOR_TICK_NS);
                let snap = health.snapshot();
                let score = snap.injected_stalls
                    + snap.injected_panics
                    + snap.injected_wedges
                    + snap.batches_failed;
                let delta = score.saturating_sub(last_score);
                last_score = score;
                // Dark-fabric detection: queued admissions with no window
                // progress across consecutive ticks means the pool is
                // wedged (not merely busy).
                let mut stalled = false;
                if let Some(fabric) = &registry.fabric {
                    if health.rung() == LadderRung::Fabric {
                        let windows = fabric.windows_processed();
                        if fabric.pending_queries() > 0 && windows == last_windows {
                            stall_ticks += 1;
                        } else {
                            stall_ticks = 0;
                        }
                        last_windows = windows;
                        if stall_ticks >= MONITOR_STALL_TICKS {
                            stalled = true;
                            stall_ticks = 0;
                        }
                    } else {
                        stall_ticks = 0;
                    }
                }
                if stalled {
                    health.demote();
                    if let Some(fabric) = &registry.fabric {
                        // Re-route the dark pool's held work through the
                        // pool/serial rung and stand up a replacement
                        // worker so a later promotion has a live fabric.
                        fabric.reclaim();
                        fabric.respawn_worker();
                    }
                    clean_ticks = 0;
                    continue;
                }
                if delta >= MONITOR_FAULT_BURST {
                    health.demote();
                    clean_ticks = 0;
                    continue;
                }
                if delta == 0 {
                    clean_ticks += 1;
                    if clean_ticks >= MONITOR_PROMOTE_TICKS {
                        health.promote(top);
                        clean_ticks = 0;
                    }
                } else {
                    clean_ticks = 0;
                }
            }
        });
    }

    /// Drop one in-flight claim on `fact`'s stage; tears the stage down
    /// when it was the last (its counters and last runtime signals are
    /// absorbed into the retired ledger, so reports and governor signals
    /// survive the churn). `in_flight == 0` means every ticket on this
    /// stage has completed; a finalizer still in its last bookkeeping step
    /// is fine — stage shutdown is cooperative (flags + closed queues), so
    /// tearing down under it is benign.
    fn release(&self, fact: TableId) {
        self.leases.release(fact);
    }

    /// Per-stage governor signals for `fact`: in-flight count plus the
    /// stage's runtime stats. Falls back to the last retired incarnation's
    /// signals (selectivity / key-run EWMAs) when the stage is currently
    /// torn down.
    fn stage_signals(&self, fact: TableId) -> (u64, CjoinRuntimeStats) {
        if let Some(sig) = self
            .leases
            .with_live(fact, |e| (e.in_flight, e.value.stage.runtime_stats()))
        {
            return sig;
        }
        let rt = self
            .leases
            .with_retired(fact, |r| r.last_runtime.clone())
            .flatten()
            .map(|rt| CjoinRuntimeStats {
                active_queries: 0,
                ..rt
            })
            .unwrap_or(CjoinRuntimeStats {
                active_queries: 0,
                avg_key_run: 1.0,
                dim_selectivity: None,
                dim_selectivity_by_dim: Vec::new(),
            });
        (0, rt)
    }

    /// Queries pending on the cross-stage admission fabric (0 without one):
    /// the governor's `cross_stage_pending` signal.
    fn fabric_pending(&self) -> u64 {
        self.fabric.as_ref().map_or(0, |f| f.pending_queries())
    }

    /// Aggregate CJOIN counters over every stage ever built (live +
    /// retired), plus the physical pages the cross-stage fabric read on
    /// their behalf (each counted once per batching window, attributed to
    /// the fabric — per-stage counters stay 0 under it), so the aggregate
    /// keeps covering every physical admission read of the engine.
    fn total_stats(&self) -> CjoinStats {
        let mut total = CjoinStats::default();
        self.leases
            .for_each_live(|_, entry| total.absorb(&entry.value.stage.stats()));
        self.leases
            .for_each_retired(|_, cell| total.absorb(&cell.stats));
        if let Some(fabric) = &self.fabric {
            total.admission_dim_pages += fabric.stats().admission_dim_pages;
        }
        total
    }

    /// Per-fact report rows, sorted by fact name (deterministic output).
    fn rows(&self) -> Vec<StageRow> {
        let mut by_fact: FxHashMap<TableId, StageRow> = FxHashMap::default();
        self.leases.for_each_retired(|fact, cell| {
            by_fact.insert(
                *fact,
                StageRow {
                    fact: cell.fact_name.clone(),
                    label: format!("Shared({})", cell.fact_name),
                    shared_queries: cell.served,
                    live: false,
                    stats: cell.stats.clone(),
                },
            );
        });
        self.leases.for_each_live(|fact, entry| {
            let row = by_fact.entry(*fact).or_insert_with(|| StageRow {
                fact: entry.value.fact_name.clone(),
                label: format!("Shared({})", entry.value.fact_name),
                shared_queries: 0,
                live: true,
                stats: CjoinStats::default(),
            });
            row.live = true;
            row.shared_queries += entry.served;
            row.stats.absorb(&entry.value.stage.stats());
        });
        let mut rows: Vec<StageRow> = by_fact.into_values().collect();
        rows.sort_by(|a, b| a.fact.cmp(&b.fact));
        rows
    }

    /// Shut every live stage down, then the shared admission fabric
    /// (engine shutdown). The health monitor is stopped first so it cannot
    /// act on the dying fabric.
    fn shutdown_all(&self) {
        self.monitor_stop.store(true, Ordering::Release);
        self.monitor_ws.notify_all();
        for fs in self.leases.drain_live() {
            fs.stage.shutdown();
        }
        if let Some(fabric) = &self.fabric {
            fabric.shutdown();
        }
    }
}

/// The governed engine: both execution paths plus the router between them.
struct Governed {
    policy: ExecPolicy,
    /// Shared star path: one lazily-built CJOIN stage per fact table.
    registry: Arc<StageRegistry>,
    /// Shared path for genuinely non-star queries (circular scans + SP on),
    /// and — with [`RunConfig::multifact`] off — for star queries over
    /// foreign fact tables (the pre-sharding behavior, kept as the bench
    /// baseline).
    qpipe: QpipeEngine,
    governor: Arc<SharingGovernor>,
    /// Queries submitted through this engine and not yet completed — the
    /// governor's engine-wide concurrency signal (tracked in Adaptive
    /// mode).
    in_flight: Arc<AtomicU64>,
    /// The engine's default fact table (the only CJOIN-eligible fact when
    /// `multifact` is off).
    primary_fact: TableId,
    /// Shard the shared path by fact table (default); off = the legacy
    /// single-stage-with-QPipe-fallback topology.
    multifact: bool,
    /// Virtual cores (saturation divisor of the query-centric estimate).
    cores: f64,
    /// CJOIN filter workers (parallelism divisor of the shared estimate).
    pipeline_parallelism: f64,
    /// Sequential disk bandwidth, bytes per virtual second; 0 when the
    /// database is memory-resident (no I/O terms in the estimates).
    disk_bandwidth: f64,
    /// Overload-control knobs ([`RunConfig::service`]); inactive by
    /// default, in which case [`Engine::try_submit`] degrades to plain
    /// [`Engine::submit`].
    service: ServiceConfig,
    /// Bounded-admission occupancy (engine-wide + per-tenant) the queue
    /// cap CASes on; the claim/rollback/release protocol lives in
    /// [`ServiceSlots`] (model-checked by `tests/interleave_core.rs`).
    slots: Arc<ServiceSlots>,
}

enum EngineKind {
    Qpipe(QpipeEngine),
    Cjoin(CjoinStage),
    Volcano,
    Governed(Governed),
}

struct EngineInner {
    machine: Machine,
    storage: StorageManager,
    cost: CostModel,
    shared_agg: bool,
    kind: EngineKind,
    gate_ws: WaitSet,
    gate_open: Arc<AtomicBool>,
    /// Worker-panic fault site
    /// ([`crate::config::FaultPlan::worker_panic_stride`], with the
    /// deprecated [`ServiceConfig::fault_panic_stride`] alias folded in via
    /// [`RunConfig::worker_panic_stride`]): panic inside the producer
    /// vthread of every query whose id is a multiple of the stride, after
    /// admission. Exercises the unwind path end to end — the completion
    /// guard poisons the slot, the permit and lease drops release their
    /// claims, and the run report still balances.
    fault_panic_stride: Option<u64>,
}

/// Observed-latency feedback plumbing of one adaptive submission: completes
/// back into the governor (and the in-flight counter) when the query does,
/// carrying the exact signals — and the workload-shape key — the routing
/// decision was based on.
struct RouteFeedback {
    governor: Arc<SharingGovernor>,
    route: Route,
    shape: u64,
    signals: SharingSignals,
    in_flight: Arc<AtomicU64>,
}

impl RouteFeedback {
    fn complete(&self, latency_secs: f64) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.governor
            .observe_latency_keyed(self.shape, self.route, latency_secs, &self.signals);
    }

    /// The query never ran (bind error): drop it from the in-flight count
    /// without feeding its non-latency into the calibration EWMAs.
    fn abandon(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// An engine instance bound to one machine and one mounted database.
/// Cheap to clone.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build the engine selected by `config` over an already mounted
    /// storage manager. `fact_table` names the default fact table: the
    /// single CJOIN stage's for the named CJOIN engines, the primary fact
    /// of the governed engine (with [`RunConfig::multifact`] set, further
    /// stages are sharded lazily per fact table referenced by star
    /// queries). With [`RunConfig::policy`] set, both paths are built and
    /// submissions are routed per the policy.
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        config: &RunConfig,
        fact_table: &str,
    ) -> Engine {
        // Self-healing machinery (ladder + supervised fabric windows +
        // monitor) is built only when the fault plan asks for it; the
        // default plan leaves `health` at `None` and every constructor
        // below degrades to its legacy form bit-for-bit.
        let has_fabric = config.admission_fabric && !config.cjoin_serial_admission;
        let health = config.faults.heals().then(|| {
            Arc::new(AdmissionHealth::new(if has_fabric {
                LadderRung::Fabric
            } else {
                LadderRung::Pool
            }))
        });
        let kind = match config.policy {
            Some(policy) => EngineKind::Governed(Governed {
                policy,
                registry: {
                    let registry = Arc::new(StageRegistry::new(
                        machine,
                        storage,
                        config.cjoin_config(),
                        config.cost,
                        // One cross-stage admission pool for every stage the
                        // registry will build. The serial oracle admits inline
                        // on the preprocessor, so it never uses a fabric. With
                        // a service queue cap, the fabric advertises the same
                        // cap as its pending depth so try_submit sheds before
                        // the backlog grows unbounded.
                        has_fabric.then(|| {
                            AdmissionFabric::with_recovery(
                                machine,
                                config.admission_fabric_workers,
                                config.service.queue_cap.map_or(u64::MAX, |cap| cap as u64),
                                config.faults.cjoin_faults(),
                                health.clone(),
                            )
                        }),
                        health.clone(),
                        config.faults.stage_build_stride,
                    ));
                    if let Some(h) = &health {
                        registry.spawn_health_monitor(Arc::clone(h));
                    }
                    registry
                },
                qpipe: QpipeEngine::new(
                    machine,
                    storage,
                    config.governed_qpipe_config(),
                    config.cost,
                ),
                governor: Arc::new(SharingGovernor::new(config.cost, config.governor)),
                in_flight: Arc::new(AtomicU64::new(0)),
                primary_fact: storage.table(fact_table),
                multifact: config.multifact,
                cores: config.cores as f64,
                pipeline_parallelism: config.cjoin_config().n_workers.max(1) as f64,
                disk_bandwidth: if config.io_mode == workshare_storage::IoMode::Memory {
                    0.0
                } else {
                    config.disk.bandwidth_bytes_per_sec
                },
                service: config.service,
                slots: ServiceSlots::new(),
            }),
            None => match config.engine {
                NamedConfig::Qpipe | NamedConfig::QpipeCs | NamedConfig::QpipeSp => {
                    EngineKind::Qpipe(QpipeEngine::new(
                        machine,
                        storage,
                        config.qpipe_config(),
                        config.cost,
                    ))
                }
                NamedConfig::Cjoin | NamedConfig::CjoinSp => EngineKind::Cjoin(
                    CjoinStage::new(machine, storage, fact_table, config.cjoin_config(), config.cost),
                ),
                NamedConfig::Volcano => EngineKind::Volcano,
            },
        };
        Engine {
            inner: Arc::new(EngineInner {
                machine: machine.clone(),
                storage: storage.clone(),
                cost: config.cost,
                shared_agg: config.cjoin_shared_agg,
                kind,
                gate_ws: WaitSet::new(machine),
                gate_open: Arc::new(AtomicBool::new(true)),
                fault_panic_stride: config.worker_panic_stride(),
            }),
        }
    }

    /// The machine this engine runs on.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The mounted storage manager.
    pub fn storage(&self) -> &StorageManager {
        &self.inner.storage
    }

    /// Hold all per-query work at the start line (batch semantics).
    pub fn close_gate(&self) {
        self.inner.gate_open.store(false, Ordering::Release);
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.close_gate(),
            EngineKind::Governed(g) => g.qpipe.close_gate(),
            _ => {}
        }
    }

    /// Release the start line.
    pub fn open_gate(&self) {
        self.inner.gate_open.store(true, Ordering::Release);
        self.inner.gate_ws.notify_all();
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.open_gate(),
            EngineKind::Governed(g) => g.qpipe.open_gate(),
            _ => {}
        }
    }

    /// Submit a query; returns a [`Ticket`]. Unbounded: always admits
    /// (the legacy path — overload control lives in
    /// [`Engine::try_submit`]).
    pub fn submit(&self, q: &StarQuery) -> Ticket {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => Ticket::Qpipe(e.submit(q)),
            EngineKind::Cjoin(stage) => self.submit_cjoin(stage, q, None, None, None),
            EngineKind::Volcano => self.submit_volcano(q, None, None),
            EngineKind::Governed(g) => self
                .route_and_submit(g, q, None, None)
                .expect("unbounded submission cannot shed"),
        }
    }

    /// Bounded submission on behalf of `tenant`: admit `q` if the service
    /// queue has room and some route is predicted to meet the deadline,
    /// otherwise shed it with a typed reason. With
    /// [`ServiceConfig`] inactive (the default) or on
    /// an ungoverned engine this degrades to plain [`Engine::submit`] —
    /// every query is admitted.
    pub fn try_submit(&self, q: &StarQuery, tenant: usize) -> Outcome {
        let EngineKind::Governed(g) = &self.inner.kind else {
            return Outcome::Admitted(self.submit(q));
        };
        if !g.service.is_active() {
            return Outcome::Admitted(self.submit(q));
        }
        let permit = match self.claim_service_slot(g, tenant) {
            Ok(p) => p,
            Err(reason) => return Outcome::Shed { reason },
        };
        match self.route_and_submit(g, q, permit, g.service.deadline_secs) {
            Ok(t) => Outcome::Admitted(t),
            Err(reason) => Outcome::Shed { reason },
        }
    }

    /// Reserve one slot in the bounded admission queue for `tenant`.
    /// The engine-wide and per-tenant caps are claimed by compare-and-swap
    /// (the `SimQueue::try_push` shape: reserve-or-reject, never block), so
    /// concurrent submitters cannot overshoot the cap; the fabric's pending
    /// depth is an advisory front door on top — a stalled fabric rejects
    /// new work before its backlog grows unbounded.
    fn claim_service_slot(
        &self,
        g: &Governed,
        tenant: usize,
    ) -> Result<Option<SlotPermit>, ShedReason> {
        let Some(cap) = g.service.queue_cap else {
            return Ok(None);
        };
        if let Some(fabric) = &g.registry.fabric {
            if !fabric.has_capacity() {
                return Err(ShedReason::QueueFull);
            }
        }
        let tenant_cap = g.service.tenant_cap(tenant).expect("queue_cap is set") as u64;
        // The CAS claim / tenant claim / rollback protocol lives in
        // `ServiceSlots::try_claim` (with its ordering invariants) so the
        // interleaving checker can explore it exhaustively.
        g.slots
            .try_claim(cap as u64, tenant, tenant_cap)
            .map(Some)
            .ok_or(ShedReason::QueueFull)
    }

    /// Queries admitted through [`Engine::try_submit`] and not yet
    /// completed (0 for ungoverned engines or an inactive service config).
    pub fn service_outstanding(&self) -> u64 {
        match &self.inner.kind {
            EngineKind::Governed(g) => g.slots.outstanding(),
            _ => 0,
        }
    }

    /// Live cost-model signals for routing `q`: catalog cardinalities, the
    /// engine-wide in-flight count, the cross-stage admission-fabric
    /// pending count, and the per-stage signals of the query's **own fact
    /// stage** (its crowd, observed per-dimension selectivities, key-run)
    /// — a crowded fact amortizes sharing while a quiet one does not, even
    /// on the same engine.
    fn live_signals(&self, g: &Governed, q: &StarQuery) -> SharingSignals {
        let storage = &self.inner.storage;
        let fact_t = storage.table(&q.fact);
        let fact_tuples = storage.row_count(fact_t) as f64;
        let dim_tuples: f64 = q
            .dims
            .iter()
            .map(|d| storage.row_count(storage.table(&d.dim)) as f64)
            .sum();
        let (stage_in_flight, rt) = g.registry.stage_signals(fact_t);
        let cold = SharingSignals::cold(fact_tuples, dim_tuples, q.dims.len());
        // Per-dimension selectivity: average the observed EWMAs of the
        // dimensions *this query* joins (the skew-aware signal — a query
        // over a cheap-to-share dimension gets that dimension's estimate,
        // not an engine-wide blend), falling back to the stage aggregate
        // and then the cold prior.
        let observed: Vec<f64> = q
            .dims
            .iter()
            .filter_map(|d| {
                let dim_t = storage.table(&d.dim);
                rt.dim_selectivity_by_dim
                    .iter()
                    .find(|(t, _)| *t == dim_t)
                    .map(|(_, s)| *s)
            })
            .collect();
        let dim_selectivity = if observed.is_empty() {
            rt.dim_selectivity.unwrap_or(cold.dim_selectivity)
        } else {
            observed.iter().sum::<f64>() / observed.len() as f64
        };
        SharingSignals {
            dim_selectivity,
            avg_key_run: rt.avg_key_run,
            // Admissions queued across every fact stage on the engine's
            // cross-stage fabric: the candidate's physical admission scan
            // amortizes over them no matter which stage they came from.
            cross_stage_pending: g.registry.fabric_pending() as f64,
            // The governor sees engine-wide load from both paths (its own
            // in-flight count) and from the GQPs (queries admitted by
            // earlier submissions that are still wrapping).
            concurrency: (g.in_flight.load(Ordering::Acquire) as f64)
                .max(rt.active_queries as f64),
            // …and the load on this query's own fact stage (queueing +
            // saturation terms of the shared estimate).
            stage_in_flight: (stage_in_flight as f64).max(rt.active_queries as f64),
            cores: g.cores,
            pipeline_parallelism: g.pipeline_parallelism,
            fact_bytes: storage.table_bytes(fact_t) as f64,
            disk_bandwidth_bytes_per_sec: g.disk_bandwidth,
            ..cold
        }
    }

    /// Route `q` and hand it to the chosen path. `deadline_secs` switches
    /// the governor into SLO mode (deadline shedding); `permit` is the
    /// query's claim on the bounded admission queue, released by the
    /// completion closure of whichever path runs it. With both `None` this
    /// is exactly the legacy unbounded routing.
    fn route_and_submit(
        &self,
        g: &Governed,
        q: &StarQuery,
        permit: Option<SlotPermit>,
        deadline_secs: Option<f64>,
    ) -> Result<Ticket, ShedReason> {
        let fact_t = self.inner.storage.table(&q.fact);
        // Any star query can enter its fact's sharded stage; with
        // `multifact` off only the primary fact is CJOIN-eligible (legacy
        // single-stage topology — foreign facts fall back to QPipe).
        let is_star = !q.dims.is_empty() && (g.multifact || fact_t == g.primary_fact);
        let shape = q.shape_signature();
        // One signals snapshot per submission: the decision, the recorded
        // route, and the later calibration feedback all see the same state.
        // Pinned policies need the snapshot too when a deadline is set —
        // their predicted latency decides shed-vs-admit.
        let signals = (g.policy == ExecPolicy::Adaptive || deadline_secs.is_some())
            .then(|| self.live_signals(g, q));
        let route = match g.policy {
            ExecPolicy::QueryCentric | ExecPolicy::Shared => {
                let route = if g.policy == ExecPolicy::QueryCentric {
                    Route::QueryCentric
                } else {
                    Route::Shared
                };
                if let Some(deadline) = deadline_secs {
                    let predicted =
                        g.governor
                            .predicted_ns_keyed(shape, route, signals.as_ref().unwrap());
                    if predicted > deadline * 1e9 {
                        return Err(ShedReason::Deadline);
                    }
                }
                g.governor.record_forced(route);
                route
            }
            // Non-star queries can't enter a GQP; they are still routed by
            // the governor — the shared side just lands on QPipe below.
            ExecPolicy::Adaptive => match deadline_secs {
                None => g.governor.decide_keyed(shape, signals.as_ref().unwrap()),
                Some(deadline) => {
                    match g
                        .governor
                        .decide_slo_keyed(shape, signals.as_ref().unwrap(), deadline)
                    {
                        SloDecision::Route(r) => r,
                        SloDecision::Shed => return Err(ShedReason::Deadline),
                    }
                }
            },
        };
        let feedback = (g.policy == ExecPolicy::Adaptive).then(|| {
            g.in_flight.fetch_add(1, Ordering::AcqRel);
            RouteFeedback {
                governor: Arc::clone(&g.governor),
                route,
                shape,
                signals: signals.unwrap(),
                in_flight: Arc::clone(&g.in_flight),
            }
        });
        Ok(match route {
            Route::QueryCentric => self.submit_volcano(q, feedback, permit),
            Route::Shared if is_star => {
                let (stage, lease) = g.registry.checkout(fact_t, &q.fact);
                self.submit_cjoin(&stage, q, feedback, Some(lease), permit)
            }
            Route::Shared => {
                let handle = g.qpipe.submit(q);
                if feedback.is_some() || permit.is_some() {
                    let h = handle.clone();
                    self.inner.machine.spawn(&format!("gov-obs-q{}", q.id), move |_| {
                        h.wait();
                        if let Some(fb) = &feedback {
                            fb.complete(h.latency_secs());
                        }
                        drop(permit); // release the admission slot
                    });
                }
                Ticket::Qpipe(handle)
            }
        })
    }

    /// Run `q` on the CJOIN stage: the joins are shared; a query-centric
    /// aggregation packet sits on top (paper §3.2: "subsequent operators in
    /// a query plan, e.g. aggregations or sorts, are query-centric") —
    /// unless `shared_agg` folds aggregation into the distributor. A
    /// `lease` (governed path) pins the sharded stage until the query
    /// completes.
    fn submit_cjoin(
        &self,
        stage: &CjoinStage,
        q: &StarQuery,
        feedback: Option<RouteFeedback>,
        lease: Option<StageLease>,
        permit: Option<SlotPermit>,
    ) -> Ticket {
        let inner = &self.inner;
        let start_ns = inner.machine.now_ns();
        let slot = SlotResult::new(&inner.machine, start_ns);
        // Bind before entering the stage: an unresolvable column becomes a
        // per-query error outcome at the waiter instead of a panic inside
        // the stage's own (later, internal) bind of the same plan.
        let fact_schema = inner.storage.schema(inner.storage.table(&q.fact));
        let dim_schemas: Vec<_> = q
            .dims
            .iter()
            .map(|d| inner.storage.schema(inner.storage.table(&d.dim)))
            .collect();
        let dim_refs: Vec<&workshare_common::Schema> =
            dim_schemas.iter().map(|s| s.as_ref()).collect();
        let bound = match try_bind(&fact_schema, &dim_refs, q) {
            Ok(b) => b,
            Err(e) => {
                slot.complete_error(format!("query {}: {e}", q.id), start_ns);
                if let Some(fb) = &feedback {
                    fb.abandon();
                }
                if let Some(l) = &lease {
                    l.release();
                }
                drop(permit);
                return Ticket::Slot(slot);
            }
        };
        if inner.shared_agg {
            // DataPath extension: the distributor aggregates in place;
            // adapt the stage's buffered result to a Ticket.
            let agg = stage.submit_aggregated(q);
            let slot2 = Arc::clone(&slot);
            let fault = inner.fault_panic_stride;
            let qid = q.id;
            inner.machine.spawn(&format!("cj-sagg-q{}", q.id), move |ctx| {
                let guard = CompletionGuard::new(Arc::clone(&slot2));
                if fault.is_some_and(|s| s > 0 && qid.is_multiple_of(s)) {
                    panic!("injected fault: query {qid}");
                }
                let rows = agg.wait();
                let now = ctx.machine().now_ns();
                // An admission fault surfaced into the aggregate result
                // (see `AggResult::fail`) turns this query into a typed
                // error outcome — never a hang, never a partial aggregate.
                match agg.error() {
                    Some(msg) => {
                        slot2.complete_error(format!("query {qid}: {msg}"), now);
                        guard.disarm();
                        if let Some(fb) = &feedback {
                            // Faulted queries complete abnormally fast;
                            // keep their non-latency out of the
                            // calibration EWMAs.
                            fb.abandon();
                        }
                    }
                    None => {
                        slot2.complete(rows, now);
                        guard.disarm();
                        if let Some(fb) = &feedback {
                            fb.complete((now - start_ns) / 1e9);
                        }
                    }
                }
                if let Some(l) = &lease {
                    l.release();
                }
                drop(permit);
            });
            return Ticket::Slot(slot);
        }
        let mut output = stage.submit(q);
        let order = q.order_by.clone();
        let cost = inner.cost;
        let slot2 = Arc::clone(&slot);
        let gate_ws = inner.gate_ws.clone();
        let gate_open = Arc::clone(&inner.gate_open);
        let fault = inner.fault_panic_stride;
        let qid = q.id;
        inner.machine.spawn(&format!("cj-agg-q{}", q.id), move |ctx| {
            let guard = CompletionGuard::new(Arc::clone(&slot2));
            if !gate_open.load(Ordering::Acquire) {
                gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
            }
            if fault.is_some_and(|s| s > 0 && qid.is_multiple_of(s)) {
                // Unwinding drops the output reader, which detaches from
                // the stage's exchange (the distributor marks the consumer
                // dead); the guard poisons the slot on the way out.
                panic!("injected fault: query {qid}");
            }
            let mut agg = workshare_common::agg::Aggregator::new(&bound);
            while let Some(batch) = output.reader.next(ctx) {
                ctx.charge(
                    CostKind::Aggregation,
                    cost.agg_update_tuple_ns * batch.len() as f64,
                );
                for row in &batch.rows {
                    agg.update(row);
                }
            }
            let groups = agg.group_count();
            ctx.charge(
                CostKind::Aggregation,
                cost.agg_group_output_ns * groups as f64,
            );
            if !order.is_empty() {
                ctx.charge(CostKind::Sort, cost.sort_cost(groups));
            }
            let rows = agg.finish(&order);
            let now = ctx.machine().now_ns();
            // A fault recorded on the query's cell (admission failure,
            // unreadable fact page) is checked after the stream drains:
            // the reader sees a normal end-of-stream, the waiter a typed
            // error outcome instead of a silently partial result.
            match output.fault.lock().clone() {
                Some(msg) => {
                    slot2.complete_error(format!("query {qid}: {msg}"), now);
                    guard.disarm();
                    if let Some(fb) = &feedback {
                        fb.abandon();
                    }
                }
                None => {
                    slot2.complete(Arc::new(rows), now);
                    guard.disarm();
                    if let Some(fb) = &feedback {
                        fb.complete((now - start_ns) / 1e9);
                    }
                }
            }
            if let Some(l) = &lease {
                l.release();
            }
            drop(permit);
        });
        Ticket::Slot(slot)
    }

    /// Run `q` on a private Volcano-style plan on its own vthread.
    fn submit_volcano(
        &self,
        q: &StarQuery,
        feedback: Option<RouteFeedback>,
        permit: Option<SlotPermit>,
    ) -> Ticket {
        let inner = &self.inner;
        let start_ns = inner.machine.now_ns();
        let slot = SlotResult::new(&inner.machine, start_ns);
        // Same up-front bind check as the CJOIN path: malformed queries
        // become error outcomes, not a panic inside the plan vthread.
        {
            let fact_schema = inner.storage.schema(inner.storage.table(&q.fact));
            let dim_schemas: Vec<_> = q
                .dims
                .iter()
                .map(|d| inner.storage.schema(inner.storage.table(&d.dim)))
                .collect();
            let dim_refs: Vec<&workshare_common::Schema> =
                dim_schemas.iter().map(|s| s.as_ref()).collect();
            if let Err(e) = try_bind(&fact_schema, &dim_refs, q) {
                slot.complete_error(format!("query {}: {e}", q.id), start_ns);
                if let Some(fb) = &feedback {
                    fb.abandon();
                }
                drop(permit);
                return Ticket::Slot(slot);
            }
        }
        let slot2 = Arc::clone(&slot);
        let storage = inner.storage.clone();
        let cost = inner.cost;
        let q = q.clone();
        let gate_ws = inner.gate_ws.clone();
        let gate_open = Arc::clone(&inner.gate_open);
        let fault = inner.fault_panic_stride;
        inner.machine.spawn(&format!("volcano-q{}", q.id), move |ctx| {
            let guard = CompletionGuard::new(Arc::clone(&slot2));
            if !gate_open.load(Ordering::Acquire) {
                gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
            }
            if fault.is_some_and(|s| s > 0 && q.id.is_multiple_of(s)) {
                panic!("injected fault: query {}", q.id);
            }
            match try_run_volcano_query(ctx, &storage, &q, &cost) {
                Ok(rows) => {
                    let now = ctx.machine().now_ns();
                    slot2.complete(Arc::new(rows), now);
                    guard.disarm();
                    if let Some(fb) = &feedback {
                        fb.complete((now - start_ns) / 1e9);
                    }
                }
                Err(e) => {
                    // An unrecoverable page read (permanent fault, torn
                    // page past rebuild) ends the query in a typed error
                    // outcome instead of a vthread panic.
                    let now = ctx.machine().now_ns();
                    slot2.complete_error(format!("query {}: {e}", q.id), now);
                    guard.disarm();
                    if let Some(fb) = &feedback {
                        fb.abandon();
                    }
                }
            }
            drop(permit);
        });
        Ticket::Slot(slot)
    }

    /// Sharing statistics from the QPipe path, if applicable.
    pub fn qpipe_sharing(&self) -> Option<workshare_qpipe::SharingStats> {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => Some(e.sharing_stats()),
            EngineKind::Governed(g) => Some(g.qpipe.sharing_stats()),
            _ => None,
        }
    }

    /// CJOIN stage statistics, if applicable. For a governed engine this is
    /// the aggregate over every sharded stage ever built (see
    /// [`Engine::stage_rows`] for the per-fact breakdown).
    pub fn cjoin_stats(&self) -> Option<workshare_cjoin::CjoinStats> {
        match &self.inner.kind {
            EngineKind::Cjoin(s) => Some(s.stats()),
            EngineKind::Governed(g) => Some(g.registry.total_stats()),
            _ => None,
        }
    }

    /// Per-fact-table stage rows of the governed engine's shared side
    /// (empty for ungoverned engines, and for governed runs that never
    /// routed a star query to a stage).
    pub fn stage_rows(&self) -> Vec<StageRow> {
        match &self.inner.kind {
            EngineKind::Governed(g) => g.registry.rows(),
            _ => Vec::new(),
        }
    }

    /// Counters of the engine-level cross-stage admission fabric, if this
    /// engine runs one ([`RunConfig::admission_fabric`]). `None` for
    /// ungoverned engines and when the per-stage pools serve admission.
    pub fn fabric_stats(&self) -> Option<FabricStats> {
        match &self.inner.kind {
            EngineKind::Governed(g) => g.registry.fabric.as_ref().map(|f| f.stats()),
            _ => None,
        }
    }

    /// Fault-injection and self-healing accounting across every layer of
    /// this engine: storage retry/quarantine counters, the admission
    /// ladder's counters and current rung, and stage quarantine/rebuilds.
    /// All-zero ([`HealthStats::is_quiet`]) for runs with the default
    /// (off) fault plan.
    pub fn health_stats(&self) -> HealthStats {
        let storage = self.inner.storage.fault_stats();
        match &self.inner.kind {
            EngineKind::Governed(g) => HealthStats {
                storage,
                admission: g
                    .registry
                    .health
                    .as_ref()
                    .map(|h| h.snapshot())
                    .unwrap_or_default(),
                stage_rebuilds: g.registry.stage_rebuilds.load(Ordering::Relaxed),
            },
            _ => HealthStats {
                storage,
                ..HealthStats::default()
            },
        }
    }

    /// Routing statistics of the governed engine, if applicable.
    pub fn governor_stats(&self) -> Option<GovernorStats> {
        match &self.inner.kind {
            EngineKind::Governed(g) => Some(g.governor.stats()),
            _ => None,
        }
    }

    /// Stop background services (shared scanners, CJOIN pipeline).
    pub fn shutdown(&self) {
        match &self.inner.kind {
            EngineKind::Qpipe(e) => e.shutdown(),
            EngineKind::Cjoin(s) => s.shutdown(),
            EngineKind::Volcano => {}
            EngineKind::Governed(g) => {
                g.registry.shutdown_all();
                g.qpipe.shutdown();
            }
        }
    }
}
