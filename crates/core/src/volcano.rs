//! Volcano-style query-centric engine — the Postgres substitute.
//!
//! The paper's Figure 16 compares against PostgreSQL 9.1.4 as "another
//! example of a query-centric execution engine that does not share among
//! concurrent queries". The property that matters is *no inter-query
//! sharing*: each query scans, joins and aggregates privately, one thread
//! per query, tuple at a time. Contention appears exactly where it does for
//! Postgres: the buffer pool, the disk, and the CPUs.
//!
//! No exchange/queue overheads are charged (a mature single-threaded
//! executor has none), so a single Volcano query is *cheaper* than a single
//! staged-engine query — reproducing the paper's observation that Postgres
//! wins at low concurrency while collapsing at high concurrency.

use std::sync::Arc;

use workshare_common::agg::Aggregator;
use workshare_common::bind::bind;
use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{CostModel, StarQuery};
use workshare_sim::{CostKind, SimCtx};
use workshare_storage::{StorageError, StorageManager};

/// Execute `q` start-to-finish on the calling vthread; returns result rows.
/// Panics on an unrecoverable page read — use [`try_run_volcano_query`]
/// where a typed error outcome is wanted (the engine's submission path).
pub fn run_volcano_query(
    ctx: &SimCtx,
    storage: &StorageManager,
    q: &StarQuery,
    cost: &CostModel,
) -> Vec<Row> {
    match try_run_volcano_query(ctx, storage, q, cost) {
        Ok(rows) => rows,
        Err(e) => panic!("volcano query {}: {e}", q.id),
    }
}

/// [`run_volcano_query`] with unrecoverable page reads surfaced as typed
/// [`StorageError`]s instead of panics (transient faults are already
/// retried with backoff inside the storage manager).
pub fn try_run_volcano_query(
    ctx: &SimCtx,
    storage: &StorageManager,
    q: &StarQuery,
    cost: &CostModel,
) -> Result<Vec<Row>, StorageError> {
    let fact_t = storage.table(&q.fact);
    let fact_schema = storage.schema(fact_t);
    let dim_ts: Vec<_> = q.dims.iter().map(|d| storage.table(&d.dim)).collect();
    let dim_schemas: Vec<_> = dim_ts.iter().map(|&t| storage.schema(t)).collect();
    let dim_refs: Vec<&workshare_common::Schema> =
        dim_schemas.iter().map(|s| s.as_ref()).collect();
    let bound = bind(&fact_schema, &dim_refs, q);

    // Build one private hash table per dimension (sequentially, as a
    // single-threaded executor would).
    let mut tables: Vec<FxHashMap<i64, Row>> = Vec::with_capacity(q.dims.len());
    for (k, dj) in q.dims.iter().enumerate() {
        let t = dim_ts[k];
        let schema = &dim_schemas[k];
        let stream = storage.new_stream();
        let terms = dj.pred.term_count();
        let pk = bound.dim_pk_idx[k];
        let payload = &bound.dim_payload_idx[k];
        let mut table = FxHashMap::default();
        for p in 0..storage.page_count(t) {
            let page = storage.try_read_page(ctx, t, p, stream)?;
            let rows = page.decode_all(schema);
            ctx.charge(
                CostKind::Scan,
                cost.scan_page_fixed_ns
                    + (cost.scan_tuple_ns + cost.volcano_tuple_overhead_ns)
                        * rows.len() as f64,
            );
            // A mature executor evaluates quals with dispatch amortized per
            // page; its tuple-at-a-time identity cost is
            // `volcano_tuple_overhead_ns`, charged with the scan above.
            ctx.charge(CostKind::Select, cost.select_batch_cost(terms, rows.len()));
            let mut built = 0usize;
            for row in rows {
                if dj.pred.eval(&row) {
                    built += 1;
                    let mut v = Row::with_capacity(payload.len());
                    for &ci in payload {
                        v.push(row[ci].clone());
                    }
                    table.insert(row[pk].as_int(), v);
                }
            }
            ctx.charge(CostKind::Hashing, cost.hash_build_tuple_ns * built as f64);
        }
        tables.push(table);
    }

    // Scan the fact table, filter, probe every dimension, aggregate.
    let mut agg = Aggregator::new(&bound);
    let stream = storage.new_stream();
    let fact_terms = q.fact_pred.term_count();
    for p in 0..storage.page_count(fact_t) {
        let page = storage.try_read_page(ctx, fact_t, p, stream)?;
        let rows = page.decode_all(&fact_schema);
        ctx.charge(
            CostKind::Scan,
            cost.scan_page_fixed_ns
                + (cost.scan_tuple_ns + cost.volcano_tuple_overhead_ns)
                    * rows.len() as f64,
        );
        ctx.charge(
            CostKind::Select,
            cost.select_batch_cost(fact_terms, rows.len()),
        );
        let mut probes = 0usize;
        let mut joined_rows = 0usize;
        'row: for row in rows {
            if !q.fact_pred.eval(&row) {
                continue;
            }
            let mut joined = bound.project_fact(&row);
            for (k, table) in tables.iter().enumerate() {
                probes += 1;
                match table.get(&row[bound.fact_fk_idx[k]].as_int()) {
                    Some(payload) => joined.extend(payload.iter().cloned()),
                    None => continue 'row,
                }
            }
            joined_rows += 1;
            agg.update(&joined);
        }
        ctx.charge(CostKind::Hashing, cost.hash_probe_tuple_ns * probes as f64);
        ctx.charge(
            CostKind::Join,
            cost.join_output_tuple_ns * joined_rows as f64,
        );
        ctx.charge(
            CostKind::Aggregation,
            cost.agg_update_tuple_ns * joined_rows as f64,
        );
    }
    let groups = agg.group_count();
    ctx.charge(
        CostKind::Aggregation,
        cost.agg_group_output_ns * groups as f64,
    );
    if !q.order_by.is_empty() {
        ctx.charge(CostKind::Sort, cost.sort_cost(groups));
    }
    Ok(agg.finish(&q.order_by))
}

/// Convenience wrapper: run a Volcano query to completion and return an
/// `Arc` of the rows (for result-equivalence tests).
pub fn volcano_reference(
    ctx: &SimCtx,
    storage: &StorageManager,
    q: &StarQuery,
    cost: &CostModel,
) -> Arc<Vec<Row>> {
    Arc::new(run_volcano_query(ctx, storage, q, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::workload;
    use workshare_sim::{Machine, MachineConfig};
    use workshare_storage::{IoMode, StorageConfig};

    #[test]
    fn volcano_q3_2_produces_plausible_output() {
        let d = Dataset::ssb(0.05, 7);
        let sm = d.instantiate(
            StorageConfig {
                io_mode: IoMode::Memory,
                ..Default::default()
            },
            CostModel::default(),
        );
        let m = Machine::new(MachineConfig {
            cores: 4,
            ..Default::default()
        });
        let mut rng = workload::rng(1);
        let q = workload::ssb_q3_2(1, &mut rng);
        let cost = CostModel::default();
        let rows = m
            .spawn("vq", move |ctx| run_volcano_query(ctx, &sm, &q, &cost))
            .join()
            .unwrap();
        // Output arity: c_city, s_city, d_year, revenue.
        for r in &rows {
            assert_eq!(r.len(), 4);
        }
        assert!(m.now_ns() > 0.0, "work was charged");
    }

    #[test]
    fn volcano_is_deterministic() {
        let d = Dataset::ssb(0.05, 7);
        let sm = d.instantiate(StorageConfig::default(), CostModel::default());
        let m = Machine::new(MachineConfig::default());
        let mut rng = workload::rng(3);
        let q = workload::ssb_q1_1(1, &mut rng);
        let cost = CostModel::default();
        let sm2 = sm.clone();
        let q2 = q.clone();
        let r1 = m
            .spawn("a", move |ctx| run_volcano_query(ctx, &sm2, &q2, &cost))
            .join()
            .unwrap();
        let r2 = m
            .spawn("b", move |ctx| run_volcano_query(ctx, &sm, &q, &cost))
            .join()
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 1, "Q1.1 is a global aggregate");
    }
}
