//! The sharing governor: cost-driven routing between query-centric and
//! shared execution.
//!
//! The paper's central finding is that shared execution (CJOIN/QPipe-style
//! Global Query Plans) beats query-centric plans only **past a concurrency
//! threshold** (§5.2), and that the threshold moves with workload shape —
//! predicate selectivity, dimension sizes, and foreign-key clustering /
//! join-product skew all shift it. A static engine choice is therefore wrong
//! somewhere in every mixed workload. The governor makes the choice per
//! submission:
//!
//! 1. Build [`SharingSignals`] for the query from the catalog (table
//!    cardinalities) and live observations (in-flight query count, the
//!    fact stage's own crowd, the **per-dimension** admission-selectivity
//!    EWMAs of the dimensions the query actually joins, filter key-run
//!    length from [`CjoinRuntimeStats`](workshare_cjoin::CjoinRuntimeStats),
//!    and the cross-stage admission fabric's pending count
//!    ([`SharingSignals::cross_stage_pending`] — a dimension hot across
//!    fact tables amortizes the candidate's admission scan, pushing both
//!    facts' queries toward sharing).
//! 2. Ask the cost model for the predicted **response times** of both
//!    paths at the current concurrency
//!    ([`CostModel::query_centric_latency_ns`],
//!    [`CostModel::shared_latency_ns`] — core saturation, per-stage
//!    admission queueing and pipeline saturation, pipeline parallelism and
//!    disk-bandwidth amortization all modeled), each scaled by a
//!    calibration factor learned from observed response times (EWMA of
//!    observed / predicted per route).
//! 3. Apply **hysteresis**: the losing path must undercut the winning one
//!    by a margin before the route flips, so queries arriving near the
//!    crossover do not flap between engines.
//!
//! All mutable state — the hysteresis incumbent **and** the calibration
//! EWMAs — is keyed by a workload-**shape** signature
//! ([`StarQuery::shape_signature`](workshare_common::StarQuery::shape_signature)):
//! a stream alternating two shapes routes each by its own incumbent and
//! calibrates each against its own observations, instead of flip-counting
//! (or mis-calibrating) a single global cell. Callers that have no shape to
//! key by use the keyless wrappers, which share one global cell.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use workshare_common::fxhash::FxHashMap;
use workshare_common::{CostModel, SharingSignals};

/// Which execution path a submission is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Private Volcano-style plan: cheapest when the machine is idle.
    QueryCentric,
    /// Shared plan (CJOIN star / QPipe shared select): cheapest past the
    /// concurrency crossover.
    Shared,
}

impl Route {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Route::QueryCentric => "QueryCentric",
            Route::Shared => "Shared",
        }
    }
}

/// Outcome of an SLO-mode routing decision
/// ([`SharingGovernor::decide_slo_keyed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloDecision {
    /// Some route is predicted to finish within the deadline; run it.
    Route(Route),
    /// Neither route's calibrated estimate meets the deadline: admitting
    /// the query would only burn capacity on a guaranteed SLO miss — shed
    /// it at the door.
    Shed,
}

/// The shape key the keyless [`SharingGovernor::decide`] /
/// [`SharingGovernor::observe_latency`] wrappers file their state under.
const GLOBAL_SHAPE: u64 = 0;

/// Governor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct GovernorConfig {
    /// Relative margin by which the losing path's estimate must undercut
    /// the current path's estimate before the route flips (0.25 = 25 %
    /// cheaper). Larger values mean stickier routing.
    pub hysteresis: f64,
    /// EWMA smoothing factor for the observed/predicted calibration.
    pub ewma_alpha: f64,
    /// Largest concurrency probed by [`SharingGovernor::crossover`].
    pub max_crossover: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            hysteresis: 0.25,
            ewma_alpha: 0.2,
            max_crossover: 1024,
        }
    }
}

/// Routing counters reported alongside a run
/// ([`RunReport::governor`](crate::harness::RunReport::governor)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GovernorStats {
    /// Submissions routed to the query-centric path.
    pub routed_query_centric: u64,
    /// Submissions routed to the shared path.
    pub routed_shared: u64,
    /// Route changes between consecutive decisions **of the same shape**,
    /// summed over shapes (alternating between two shapes with stable
    /// per-shape incumbents contributes nothing).
    pub flips: u64,
    /// Observed/predicted latency calibration **learned** for the
    /// query-centric path (observation-weighted mean over shapes; 1.0
    /// until observed). NB this is the learning signal, not necessarily
    /// what decisions used: a shape's calibration is *applied* to routing
    /// only once both routes have been observed for that shape (a
    /// one-sided correction would bias the comparison).
    pub query_centric_calibration: f64,
    /// Observed/predicted latency calibration **learned** for the shared
    /// path (observation-weighted mean over shapes; 1.0 until observed —
    /// see [`query_centric_calibration`](GovernorStats::query_centric_calibration)
    /// for the learned-vs-applied distinction).
    pub shared_calibration: f64,
    /// Convergence residual of the query-centric calibration loop: EWMA of
    /// observed / (predicted × own calibration) at observation time. → 1.0
    /// as the calibration EWMA converges on a stationary workload.
    pub query_centric_residual: f64,
    /// Convergence residual of the shared calibration loop (see
    /// [`query_centric_residual`](GovernorStats::query_centric_residual)).
    pub shared_residual: f64,
    /// Distinct workload shapes the governor holds state for.
    pub shapes: u64,
    /// SLO-mode decisions where **neither** route's calibrated estimate
    /// met the deadline ([`SloDecision::Shed`]).
    pub slo_sheds: u64,
}

/// Per-route learned state of one workload shape.
#[derive(Default)]
struct RouteState {
    /// EWMA of observed-latency / predicted-cost; `None` until this route
    /// has completed a query of this shape.
    cal: Option<f64>,
    /// EWMA of observed / (predicted × `cal`-at-observation-time): the
    /// calibration loop's convergence residual.
    residual: Option<f64>,
    /// Observations folded into the EWMAs (the weight used when shapes are
    /// aggregated for [`GovernorStats`]).
    observations: u64,
}

impl RouteState {
    fn observe(&mut self, ratio: f64, alpha: f64) {
        let residual_sample = ratio / self.cal.unwrap_or(1.0);
        self.residual = Some(match self.residual {
            None => residual_sample,
            Some(prev) => (1.0 - alpha) * prev + alpha * residual_sample,
        });
        self.cal = Some(match self.cal {
            None => ratio,
            Some(prev) => (1.0 - alpha) * prev + alpha * ratio,
        });
        self.observations += 1;
    }
}

/// Hysteresis + calibration state of one workload shape.
#[derive(Default)]
struct ShapeState {
    /// Last route decided for this shape — its hysteresis incumbent.
    route: Option<Route>,
    qc: RouteState,
    sh: RouteState,
    flips: u64,
}

impl ShapeState {
    /// Calibration pair applied to estimates. Only applied when BOTH routes
    /// have been observed for this shape: a one-sided correction would bias
    /// the comparison toward whichever path happens to have run first.
    fn applied_cals(&self) -> (f64, f64) {
        match (self.qc.cal, self.sh.cal) {
            (Some(q), Some(s)) => (q, s),
            _ => (1.0, 1.0),
        }
    }
}

struct GovState {
    shapes: FxHashMap<u64, ShapeState>,
}

/// Per-submission router between query-centric and shared execution. Cheap
/// to share behind an `Arc`; all methods take `&self`.
pub struct SharingGovernor {
    cost: CostModel,
    config: GovernorConfig,
    routed_qc: AtomicU64,
    routed_sh: AtomicU64,
    slo_sheds: AtomicU64,
    state: Mutex<GovState>,
}

impl SharingGovernor {
    /// New governor over `cost` with `config` knobs.
    pub fn new(cost: CostModel, config: GovernorConfig) -> SharingGovernor {
        SharingGovernor {
            cost,
            config,
            routed_qc: AtomicU64::new(0),
            routed_sh: AtomicU64::new(0),
            slo_sheds: AtomicU64::new(0),
            state: Mutex::new(GovState {
                shapes: FxHashMap::default(),
            }),
        }
    }

    /// The governor's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Uncalibrated model estimate for `route` (the denominator of the
    /// calibration ratio — calibrating against the calibrated value would
    /// converge to the square root of the true model error).
    fn raw_predicted_ns(&self, route: Route, signals: &SharingSignals) -> f64 {
        match route {
            Route::QueryCentric => self.cost.query_centric_latency_ns(signals),
            Route::Shared => self.cost.shared_latency_ns(signals),
        }
    }

    /// Calibrated cost estimate of running one query of `shape` via `route`
    /// under the live `signals`.
    pub fn predicted_ns_keyed(
        &self,
        shape: u64,
        route: Route,
        signals: &SharingSignals,
    ) -> f64 {
        let state = self.state.lock();
        let (qc_cal, sh_cal) = state
            .shapes
            .get(&shape)
            .map(ShapeState::applied_cals)
            .unwrap_or((1.0, 1.0));
        drop(state);
        let cal = match route {
            Route::QueryCentric => qc_cal,
            Route::Shared => sh_cal,
        };
        self.raw_predicted_ns(route, signals) * cal
    }

    /// Keyless [`predicted_ns_keyed`](SharingGovernor::predicted_ns_keyed)
    /// over the global shape cell.
    pub fn predicted_ns(&self, route: Route, signals: &SharingSignals) -> f64 {
        self.predicted_ns_keyed(GLOBAL_SHAPE, route, signals)
    }

    /// Route one submission of workload shape `shape`. Applies hysteresis
    /// around the cost crossover **per shape**: the route flips only when
    /// the other path's calibrated estimate undercuts the shape's incumbent
    /// by the configured margin.
    pub fn decide_keyed(&self, shape: u64, signals: &SharingSignals) -> Route {
        let qc = self.predicted_ns_keyed(shape, Route::QueryCentric, signals);
        let sh = self.predicted_ns_keyed(shape, Route::Shared, signals);
        let mut state = self.state.lock();
        let shape_state = state.shapes.entry(shape).or_default();
        let margin = 1.0 - self.config.hysteresis.clamp(0.0, 0.9);
        let route = match shape_state.route {
            // Cold start for this shape (nothing observed yet): a plain
            // latency comparison — no incumbent to be sticky about.
            None => {
                if sh < qc {
                    Route::Shared
                } else {
                    Route::QueryCentric
                }
            }
            Some(Route::QueryCentric) => {
                if sh < qc * margin {
                    Route::Shared
                } else {
                    Route::QueryCentric
                }
            }
            Some(Route::Shared) => {
                if qc < sh * margin {
                    Route::QueryCentric
                } else {
                    Route::Shared
                }
            }
        };
        if shape_state.route.is_some_and(|prev| prev != route) {
            shape_state.flips += 1;
        }
        shape_state.route = Some(route);
        drop(state);
        match route {
            Route::QueryCentric => self.routed_qc.fetch_add(1, Ordering::Relaxed),
            Route::Shared => self.routed_sh.fetch_add(1, Ordering::Relaxed),
        };
        route
    }

    /// Keyless [`decide_keyed`](SharingGovernor::decide_keyed) over the
    /// global shape cell.
    pub fn decide(&self, signals: &SharingSignals) -> Route {
        self.decide_keyed(GLOBAL_SHAPE, signals)
    }

    /// SLO-mode routing: like [`decide_keyed`](SharingGovernor::decide_keyed)
    /// but deadline-aware. The hysteresis-preferred route wins when its
    /// calibrated estimate meets `deadline_secs`; otherwise the other route
    /// wins **if it meets the deadline** (a genuine flip — the SLO overrides
    /// stickiness); when neither route is predicted to finish in time the
    /// query is [shed](SloDecision::Shed) without touching the shape's
    /// incumbent (a shed is not evidence about which route is cheaper).
    pub fn decide_slo_keyed(
        &self,
        shape: u64,
        signals: &SharingSignals,
        deadline_secs: f64,
    ) -> SloDecision {
        let qc = self.predicted_ns_keyed(shape, Route::QueryCentric, signals);
        let sh = self.predicted_ns_keyed(shape, Route::Shared, signals);
        let deadline_ns = deadline_secs * 1e9;
        let meets = |ns: f64| ns <= deadline_ns;
        let mut state = self.state.lock();
        let shape_state = state.shapes.entry(shape).or_default();
        let margin = 1.0 - self.config.hysteresis.clamp(0.0, 0.9);
        let preferred = match shape_state.route {
            None => {
                if sh < qc {
                    Route::Shared
                } else {
                    Route::QueryCentric
                }
            }
            Some(Route::QueryCentric) => {
                if sh < qc * margin {
                    Route::Shared
                } else {
                    Route::QueryCentric
                }
            }
            Some(Route::Shared) => {
                if qc < sh * margin {
                    Route::QueryCentric
                } else {
                    Route::Shared
                }
            }
        };
        let (pref_ns, other, other_ns) = match preferred {
            Route::QueryCentric => (qc, Route::Shared, sh),
            Route::Shared => (sh, Route::QueryCentric, qc),
        };
        let route = if meets(pref_ns) {
            preferred
        } else if meets(other_ns) {
            other
        } else {
            drop(state);
            self.slo_sheds.fetch_add(1, Ordering::Relaxed);
            return SloDecision::Shed;
        };
        if shape_state.route.is_some_and(|prev| prev != route) {
            shape_state.flips += 1;
        }
        shape_state.route = Some(route);
        drop(state);
        match route {
            Route::QueryCentric => self.routed_qc.fetch_add(1, Ordering::Relaxed),
            Route::Shared => self.routed_sh.fetch_add(1, Ordering::Relaxed),
        };
        SloDecision::Route(route)
    }

    /// Record a route that was forced by a pinned policy
    /// ([`ExecPolicy::QueryCentric`](crate::config::ExecPolicy) /
    /// [`ExecPolicy::Shared`](crate::config::ExecPolicy)) rather than
    /// decided, so routing statistics stay meaningful for the static
    /// baselines. Does not touch the hysteresis state.
    pub fn record_forced(&self, route: Route) {
        match route {
            Route::QueryCentric => self.routed_qc.fetch_add(1, Ordering::Relaxed),
            Route::Shared => self.routed_sh.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Feed back one completed query's observed response time against the
    /// (uncalibrated) model estimate for the signals seen at routing time,
    /// into the calibration state of workload shape `shape`. Updates the
    /// shape's route calibration EWMA so future estimates absorb queueing
    /// and model error, and the convergence residual reported via
    /// [`GovernorStats`].
    pub fn observe_latency_keyed(
        &self,
        shape: u64,
        route: Route,
        observed_secs: f64,
        signals: &SharingSignals,
    ) {
        let predicted_ns = self.raw_predicted_ns(route, signals);
        if predicted_ns <= 0.0 || observed_secs < 0.0 {
            return;
        }
        let ratio = (observed_secs * 1e9) / predicted_ns;
        let alpha = self.config.ewma_alpha.clamp(0.0, 1.0);
        let mut state = self.state.lock();
        let shape_state = state.shapes.entry(shape).or_default();
        let cell = match route {
            Route::QueryCentric => &mut shape_state.qc,
            Route::Shared => &mut shape_state.sh,
        };
        cell.observe(ratio, alpha);
    }

    /// Keyless
    /// [`observe_latency_keyed`](SharingGovernor::observe_latency_keyed)
    /// over the global shape cell.
    pub fn observe_latency(&self, route: Route, observed_secs: f64, signals: &SharingSignals) {
        self.observe_latency_keyed(GLOBAL_SHAPE, route, observed_secs, signals);
    }

    /// Estimated concurrency crossover for `signals`' workload shape (the
    /// smallest query count at which sharing wins).
    pub fn crossover(&self, signals: &SharingSignals) -> u32 {
        self.cost
            .sharing_crossover_queries(signals, self.config.max_crossover)
    }

    /// Routing statistics, aggregated over shapes (per-route calibrations
    /// and residuals are observation-weighted means — exact for the common
    /// single-shape stream).
    pub fn stats(&self) -> GovernorStats {
        let state = self.state.lock();
        let mut flips = 0;
        let agg = |pick: fn(&ShapeState) -> &RouteState| {
            let (mut num, mut res_num, mut weight) = (0.0, 0.0, 0u64);
            for shape in state.shapes.values() {
                let rs = pick(shape);
                if let (Some(cal), Some(residual)) = (rs.cal, rs.residual) {
                    num += cal * rs.observations as f64;
                    res_num += residual * rs.observations as f64;
                    weight += rs.observations;
                }
            }
            if weight == 0 {
                (1.0, 1.0)
            } else {
                (num / weight as f64, res_num / weight as f64)
            }
        };
        let (qc_cal, qc_res) = agg(|s| &s.qc);
        let (sh_cal, sh_res) = agg(|s| &s.sh);
        for shape in state.shapes.values() {
            flips += shape.flips;
        }
        GovernorStats {
            routed_query_centric: self.routed_qc.load(Ordering::Relaxed),
            routed_shared: self.routed_sh.load(Ordering::Relaxed),
            flips,
            query_centric_calibration: qc_cal,
            shared_calibration: sh_cal,
            query_centric_residual: qc_res,
            shared_residual: sh_res,
            shapes: state.shapes.len() as u64,
            slo_sheds: self.slo_sheds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Memory-resident scan-heavy SSB-like shape: the pipelined shared plan
    /// beats the serial private plan at idle, and with shared-scan
    /// admission the crowd keeps sharing too (queued arrivals add only
    /// their predicate-evaluation increment, not a full dimension scan).
    /// Single-stage world: the whole crowd is on the candidate's stage.
    fn signals(concurrency: f64) -> SharingSignals {
        SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(30_000.0, 4_000.0, 3)
        }
        .with_crowd(concurrency)
    }

    /// Admission-dominated shape (tiny fact, huge dimension): a lone query
    /// pays the whole admission scan with nothing to amortize it, so
    /// query-centric wins the low end; the crowd crosses over once the scan
    /// is shared across the batch and the private plans saturate the cores.
    fn flat_signals(concurrency: f64) -> SharingSignals {
        SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(2_000.0, 50_000.0, 1)
        }
        .with_crowd(concurrency)
    }

    /// Degenerate tiny-table shape: everything fits in a few pages, so the
    /// fixed admission cost dominates and private plans win decisively at
    /// any concurrency the hysteresis band can see.
    fn tiny_signals(concurrency: f64) -> SharingSignals {
        SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(100.0, 100.0, 1)
        }
        .with_crowd(concurrency)
    }

    /// Disk-resident variant of the scan-heavy shape: one circular scan
    /// feeds everyone, n private streams split the device.
    fn disk_signals(concurrency: f64) -> SharingSignals {
        SharingSignals {
            fact_bytes: 11.5e6,
            disk_bandwidth_bytes_per_sec: 220.0 * 1024.0 * 1024.0,
            ..signals(concurrency)
        }
    }

    fn governor() -> SharingGovernor {
        SharingGovernor::new(CostModel::default(), GovernorConfig::default())
    }

    #[test]
    fn cold_start_decides_from_the_model_without_history() {
        // `active_queries == 0`, nothing observed: the decision is a plain
        // latency comparison per workload shape, and stats stay coherent.
        let g = governor();
        assert_eq!(g.decide(&flat_signals(0.0)), Route::QueryCentric);
        let st = g.stats();
        assert_eq!(st.routed_query_centric, 1);
        assert_eq!(st.routed_shared, 0);
        assert_eq!(st.flips, 0);
        // A scan-heavy shape cold-starts shared instead: the pipelined
        // wrap beats a fully serial private plan even for a lone query.
        let g2 = governor();
        assert_eq!(g2.decide(&signals(0.0)), Route::Shared);
        assert_eq!(g2.stats().flips, 0);
    }

    #[test]
    fn crowds_route_by_load_and_residency() {
        // Admission-dominated shape at idle: query-centric. The same shape
        // crowded: with de-serialized admission the batch shares one
        // dimension scan while 64 private plans fight over the cores —
        // Shared. (Before the admission de-serialization this crowd flipped
        // back to query-centric; that inversion is gone.)
        let g = governor();
        assert_eq!(g.decide(&flat_signals(0.0)), Route::QueryCentric);
        let g2 = governor();
        assert_eq!(g2.decide(&flat_signals(63.0)), Route::Shared);
        // Disk-resident crowd: bandwidth amortization wins — Shared.
        let g3 = governor();
        assert_eq!(g3.decide(&disk_signals(63.0)), Route::Shared);
    }

    #[test]
    fn cross_stage_pending_tips_admission_bound_shapes_to_shared() {
        // A lone admission-dominated query routes query-centric: nothing
        // amortizes its dimension scan.
        let g = governor();
        assert_eq!(g.decide(&flat_signals(0.0)), Route::QueryCentric);
        // The same lone query while a crowd from *other* fact stages is
        // queued on the cross-stage admission fabric: the batching window
        // scans the dimension once for everyone, the candidate's share
        // collapses, and the governor routes it shared — the fabric makes
        // a dimension hot across facts pull every fact toward sharing.
        let g2 = governor();
        let hot = SharingSignals {
            cross_stage_pending: 31.0,
            ..flat_signals(0.0)
        };
        assert_eq!(g2.decide(&hot), Route::Shared);
    }

    #[test]
    fn hysteresis_prevents_flapping_at_the_threshold() {
        let cost = CostModel::default();
        // Find the concurrency where the admission-dominated estimates
        // cross (query-centric wins below, shared above once the batch
        // amortizes the scan), then check the estimates really are within
        // the hysteresis band there.
        let cross = (1..512)
            .find(|&c| {
                cost.shared_latency_ns(&flat_signals(c as f64))
                    < cost.query_centric_latency_ns(&flat_signals(c as f64))
            })
            .expect("admission-dominated shape must cross") as f64;
        let qc = cost.query_centric_latency_ns(&flat_signals(cross));
        let sh = cost.shared_latency_ns(&flat_signals(cross));
        assert!((qc - sh).abs() < 0.25 * qc, "qc={qc} sh={sh}");
        // Oscillate the concurrency either side of the threshold: without
        // hysteresis every decision would flip; with it the route settles
        // after at most one transition.
        let g = governor();
        let mut routes = Vec::new();
        for i in 0..40 {
            let c = if i % 2 == 0 { cross + 2.0 } else { (cross - 2.0).max(0.0) };
            routes.push(g.decide(&flat_signals(c)));
        }
        assert!(
            g.stats().flips <= 1,
            "route flapped {} times across the threshold: {routes:?}",
            g.stats().flips
        );
    }

    #[test]
    fn large_swings_still_flip_the_route() {
        let g = governor();
        assert_eq!(g.decide(&flat_signals(2.0)), Route::QueryCentric);
        // A disk-resident crowd is decisively shared…
        assert_eq!(g.decide(&disk_signals(64.0)), Route::Shared);
        // …and a tiny admission-fixed-cost-dominated query decisively
        // isn't, even against the shared incumbent's hysteresis.
        assert_eq!(g.decide(&tiny_signals(0.0)), Route::QueryCentric);
        assert_eq!(g.stats().flips, 2);
    }

    #[test]
    fn per_shape_incumbents_are_independent() {
        // Two shapes with opposite preferences, alternated: each keeps its
        // own incumbent; no flips, no cross-shape contamination. With the
        // former single global incumbent this stream flip-counted (or
        // routed one shape by the other's incumbent) on every alternation.
        let g = governor();
        for _ in 0..25 {
            assert_eq!(g.decide_keyed(1, &signals(4.0)), Route::Shared);
            assert_eq!(g.decide_keyed(2, &tiny_signals(4.0)), Route::QueryCentric);
        }
        let st = g.stats();
        assert_eq!(st.flips, 0, "{st:?}");
        assert_eq!(st.shapes, 2);
        assert_eq!(st.routed_shared, 25);
        assert_eq!(st.routed_query_centric, 25);
    }

    #[test]
    fn per_shape_calibration_is_isolated() {
        let g = governor();
        let s = signals(4.0);
        let raw_sh = CostModel::default().shared_latency_ns(&s);
        let raw_qc = CostModel::default().query_centric_latency_ns(&s);
        // Shape 1 learns a 3× shared model error; shape 2 observes nothing.
        for _ in 0..100 {
            g.observe_latency_keyed(1, Route::Shared, 3.0 * raw_sh / 1e9, &s);
            g.observe_latency_keyed(1, Route::QueryCentric, raw_qc / 1e9, &s);
        }
        let cal1 = g.predicted_ns_keyed(1, Route::Shared, &s) / raw_sh;
        let cal2 = g.predicted_ns_keyed(2, Route::Shared, &s) / raw_sh;
        assert!((cal1 - 3.0).abs() < 0.1, "shape 1 calibrated: {cal1}");
        assert!((cal2 - 1.0).abs() < 1e-9, "shape 2 untouched: {cal2}");
    }

    #[test]
    fn calibration_waits_for_both_routes() {
        let g = governor();
        let s = signals(4.0);
        let base = g.predicted_ns(Route::Shared, &s);
        // Observing only the shared route must not change estimates…
        g.observe_latency(Route::Shared, 1.0, &s);
        assert_eq!(g.predicted_ns(Route::Shared, &s), base);
        // …but once both routes are observed, calibration applies.
        g.observe_latency(Route::QueryCentric, 1.0, &s);
        assert!(g.stats().shared_calibration > 0.0);
    }

    #[test]
    fn calibration_converges_to_the_model_error_not_its_square_root() {
        let g = governor();
        let s = signals(4.0);
        let cost = CostModel::default();
        let raw_sh = cost.shared_latency_ns(&s);
        let raw_qc = cost.query_centric_latency_ns(&s);
        // Reality is 4× the model on the shared path, exact on the other.
        for _ in 0..200 {
            g.observe_latency(Route::Shared, 4.0 * raw_sh / 1e9, &s);
            g.observe_latency(Route::QueryCentric, raw_qc / 1e9, &s);
        }
        let st = g.stats();
        assert!((st.shared_calibration - 4.0).abs() < 0.1, "{st:?}");
        assert!((st.query_centric_calibration - 1.0).abs() < 0.1, "{st:?}");
        // The calibrated estimate reflects the full 4×, not √4.
        assert!((g.predicted_ns(Route::Shared, &s) / raw_sh - 4.0).abs() < 0.1);
        // And the convergence residuals have settled at 1.0: the
        // calibration loop fully absorbed the (stationary) model error.
        assert!((st.shared_residual - 1.0).abs() < 0.05, "{st:?}");
        assert!((st.query_centric_residual - 1.0).abs() < 0.05, "{st:?}");
    }

    #[test]
    fn slo_mode_prefers_routes_that_meet_the_deadline() {
        let cost = CostModel::default();
        let g = governor();
        let s = flat_signals(0.0); // query-centric decisively cheaper
        let qc_ns = cost.query_centric_latency_ns(&s);
        let sh_ns = cost.shared_latency_ns(&s);
        assert!(qc_ns < sh_ns, "shape precondition");
        // Generous deadline: the hysteresis-preferred (cheaper) route runs.
        let roomy = (sh_ns * 2.0) / 1e9;
        assert_eq!(g.decide_slo_keyed(7, &s, roomy), SloDecision::Route(Route::QueryCentric));
        // Deadline between the two estimates: still the meeting route.
        let between = (qc_ns + sh_ns) / 2.0 / 1e9;
        assert_eq!(g.decide_slo_keyed(7, &s, between), SloDecision::Route(Route::QueryCentric));
        assert_eq!(g.stats().slo_sheds, 0);
    }

    #[test]
    fn slo_mode_overrides_hysteresis_to_meet_the_deadline() {
        let cost = CostModel::default();
        let g = governor();
        // Establish a Shared incumbent on a shape where shared wins.
        let easy = signals(4.0);
        assert_eq!(g.decide_keyed(9, &easy), Route::Shared);
        // Now a burst where shared misses the deadline but query-centric
        // meets it: SLO mode must flip off the incumbent.
        let tiny = tiny_signals(0.0);
        let qc_ns = cost.query_centric_latency_ns(&tiny);
        let sh_ns = cost.shared_latency_ns(&tiny);
        assert!(qc_ns < sh_ns, "tiny shape favors query-centric");
        let deadline = (qc_ns + sh_ns) / 2.0 / 1e9;
        assert_eq!(
            g.decide_slo_keyed(9, &tiny, deadline),
            SloDecision::Route(Route::QueryCentric)
        );
        assert_eq!(g.stats().flips, 1, "the SLO override counts as a flip");
    }

    #[test]
    fn slo_mode_sheds_when_neither_route_can_meet_the_deadline() {
        let g = governor();
        let s = signals(4.0);
        // Establish an incumbent, then present an impossible deadline.
        assert_eq!(g.decide_slo_keyed(3, &s, 1e9), SloDecision::Route(Route::Shared));
        assert_eq!(g.decide_slo_keyed(3, &s, 1e-12), SloDecision::Shed);
        let st = g.stats();
        assert_eq!(st.slo_sheds, 1);
        // The shed left the incumbent alone: the next roomy decision is
        // still Shared with no flip.
        assert_eq!(g.decide_slo_keyed(3, &s, 1e9), SloDecision::Route(Route::Shared));
        assert_eq!(g.stats().flips, 0);
    }

    #[test]
    fn bad_observations_are_ignored() {
        let g = governor();
        g.observe_latency(Route::QueryCentric, -1.0, &signals(4.0));
        let st = g.stats();
        assert_eq!(st.shared_calibration, 1.0);
        assert_eq!(st.query_centric_calibration, 1.0);
        assert_eq!(st.shared_residual, 1.0);
    }
}
