//! Dashboard storm: the paper's motivating scenario — hundreds of users
//! refresh similar analytical dashboards at the same time (the "200–1000
//! concurrent users" the TDWI study projects).
//!
//! A dashboard fires the same handful of parameterized queries, so the mix
//! has *high similarity* (few distinct plans). This example shows why a
//! query-centric engine melts down, and how each sharing technique helps:
//! circular scans fix the I/O, SP removes redundant sub-plans, and the GQP
//! with SP handles the full storm.
//!
//! ```sh
//! cargo run --release --example dashboard_storm
//! ```

use workshare::harness::run_batch;
use workshare::{workload, Dataset, IoMode, NamedConfig, RunConfig};

fn main() {
    let dataset = Dataset::ssb(0.5, 42);
    // 128 dashboard refreshes drawn from 8 distinct parameterizations.
    let users = 128;
    let queries = workload::limited_plans(users, 8, 99, workload::ssb_q3_2_narrow);
    println!(
        "Dashboard storm: {users} concurrent refreshes, {} distinct plans, \
         disk-resident database\n",
        8
    );

    println!(
        "{:<10} {:>10} {:>8} {:>10} {:>22}",
        "config", "mean (s)", "cores", "MB/s", "sharing"
    );
    for engine in [
        NamedConfig::Qpipe,
        NamedConfig::QpipeCs,
        NamedConfig::QpipeSp,
        NamedConfig::Cjoin,
        NamedConfig::CjoinSp,
    ] {
        let mut cfg = RunConfig::named(engine);
        cfg.io_mode = IoMode::BufferedDisk;
        let report = run_batch(&dataset, &cfg, &queries, false);
        let sharing = if let Some(s) = &report.qpipe_sharing {
            format!(
                "scan sat={} join sat={:?}",
                s.scan_satellites, s.join_satellites_by_level
            )
        } else if let Some(c) = &report.cjoin {
            format!("admitted={} sp={}", c.admitted, c.sp_shares)
        } else {
            String::new()
        };
        println!(
            "{:<10} {:>10.4} {:>8.2} {:>10.2} {:>22}",
            report.config,
            report.mean_latency_secs(),
            report.avg_cores_used,
            report.read_rate_mbps,
            sharing
        );
    }
    println!(
        "\nReading the table: QPipe re-reads the fact table {users}×; \
         QPipe-CS reads it once; QPipe-SP also evaluates only 8 join \
         sub-plans; CJOIN-SP admits 8 packets and shares the rest."
    );
}
