//! Report farm: a closed-loop reporting cluster — every client runs an
//! ad-hoc SSB query, waits for the answer, and immediately submits the
//! next (the paper's Figure 16 throughput setting, low similarity).
//!
//! Shows the throughput trade-off: the query-centric baseline saturates and
//! then *degrades* as clients are added, while the GQP keeps absorbing
//! clients with near-constant marginal cost.
//!
//! ```sh
//! cargo run --release --example report_farm
//! ```

use workshare::harness::run_clients;
use workshare::{workload, Dataset, IoMode, NamedConfig, RunConfig};

fn main() {
    let dataset = Dataset::ssb(0.5, 42);
    let window_secs = 5.0; // virtual measurement window
    println!(
        "Report farm: closed-loop clients over a disk-resident SSB database, \
         {window_secs}s virtual window\n"
    );
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>10}",
        "config", "clients", "queries/hour", "latency (s)", "cores"
    );
    for engine in [
        NamedConfig::Volcano,
        NamedConfig::QpipeSp,
        NamedConfig::CjoinSp,
    ] {
        for clients in [2usize, 8, 32] {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            let rep = run_clients(
                &dataset,
                &cfg,
                "lineorder",
                clients,
                window_secs,
                17,
                |id, rng| match id % 3 {
                    0 => workload::ssb_q1_1(id, rng),
                    1 => workload::ssb_q2_1(id, rng),
                    _ => workload::ssb_q3_2(id, rng),
                },
            );
            println!(
                "{:<12} {:>8} {:>14.0} {:>14.4} {:>10.2}",
                rep.config,
                clients,
                rep.queries_per_hour,
                rep.mean_latency_secs,
                rep.avg_cores_used
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper Fig. 16): the query-centric engines' \
         throughput flattens or degrades with clients; CJOIN-SP keeps rising."
    );
}
