//! Sharing advisor: applies the paper's Table 1 rules of thumb to *your*
//! workload shape. Give it a concurrency level and a similarity level and it
//! measures all engine configurations on a matching synthetic workload,
//! recommending the best one.
//!
//! ```sh
//! cargo run --release --example sharing_advisor -- 64 high
//! cargo run --release --example sharing_advisor -- 4 low
//! ```

use workshare::harness::run_batch;
use workshare::{workload, Dataset, IoMode, NamedConfig, RunConfig, StarQuery};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let concurrency: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let similarity = args.get(2).map(|s| s.as_str()).unwrap_or("high").to_string();

    let queries: Vec<StarQuery> = match similarity.as_str() {
        "high" => workload::limited_plans(concurrency, 4, 7, workload::ssb_q3_2_narrow),
        "mid" => workload::limited_plans(concurrency, 16, 7, workload::ssb_q3_2),
        _ => {
            let mut r = workload::rng(7);
            (0..concurrency)
                .map(|i| workload::ssb_q3_2(i as u64, &mut r))
                .collect()
        }
    };
    let distinct: std::collections::HashSet<u64> =
        queries.iter().map(|q| q.full_signature()).collect();
    println!(
        "Advisor input: {concurrency} concurrent queries, similarity='{similarity}' \
         ({} distinct plans)\n",
        distinct.len()
    );

    let dataset = Dataset::ssb(0.5, 42);
    let mut best: Option<(&'static str, f64)> = None;
    println!("{:<10} {:>12} {:>8}", "config", "mean (s)", "cores");
    for engine in NamedConfig::all() {
        let mut cfg = RunConfig::named(engine);
        cfg.io_mode = IoMode::BufferedDisk;
        let rep = run_batch(&dataset, &cfg, &queries, false);
        let mean = rep.mean_latency_secs();
        println!("{:<10} {:>12.4} {:>8.2}", rep.config, mean, rep.avg_cores_used);
        if best.is_none_or(|(_, b)| mean < b) {
            best = Some((rep.config, mean));
        }
    }
    let (winner, secs) = best.unwrap();
    println!("\nMeasured recommendation: {winner} ({secs:.4}s mean response).");

    // The paper's a-priori rule (Table 1).
    let rule = if concurrency <= 16 {
        "low concurrency → query-centric operators + SP (QPipe-SP)"
    } else {
        "high concurrency → GQP shared operators + SP (CJOIN-SP)"
    };
    println!("Paper rule of thumb: {rule}.");
}
