//! Sharing advisor: the sharing governor's cost model applied to *your*
//! workload shape, checked against measurement.
//!
//! Give it a concurrency level, a similarity level and a residency and it
//! (a) prints the governor's a-priori routing analysis — predicted
//! query-centric vs shared response times and the estimated concurrency
//! crossover — then (b) measures the three execution policies (always
//! query-centric, always shared, adaptive) on a matching synthetic
//! workload plus the paper's named configurations, and compares.
//!
//! ```sh
//! cargo run --release --example sharing_advisor -- 64 high disk
//! cargo run --release --example sharing_advisor -- 4 low mem
//! ```

use workshare::harness::run_batch;
use workshare::{
    workload, Dataset, ExecPolicy, GovernorConfig, IoMode, NamedConfig, Route, RunConfig,
    SharingGovernor, StarQuery,
};
use workshare_common::SharingSignals;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let concurrency: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let similarity = args.get(2).map(|s| s.as_str()).unwrap_or("high").to_string();
    let disk = args.get(3).map(|s| s.as_str()).unwrap_or("disk") != "mem";

    let queries: Vec<StarQuery> = match similarity.as_str() {
        "high" => workload::limited_plans(concurrency, 4, 7, workload::ssb_q3_2_narrow),
        "mid" => workload::limited_plans(concurrency, 16, 7, workload::ssb_q3_2),
        _ => {
            let mut r = workload::rng(7);
            (0..concurrency)
                .map(|i| workload::ssb_q3_2(i as u64, &mut r))
                .collect()
        }
    };
    let distinct: std::collections::HashSet<u64> =
        queries.iter().map(|q| q.full_signature()).collect();
    println!(
        "Advisor input: {concurrency} concurrent queries, similarity='{similarity}', \
         {} ({} distinct plans)\n",
        if disk { "disk-resident" } else { "memory-resident" },
        distinct.len()
    );

    let dataset = Dataset::ssb(0.5, 42);
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    if disk {
        cfg.io_mode = IoMode::BufferedDisk;
    }

    // ---- a-priori: the governor's own analysis ------------------------
    // Catalog-derived signals for the workload's star shape (the engine
    // derives the same ones per submission at run time).
    let storage = dataset.instantiate(cfg.storage_config(), cfg.cost);
    let fact = storage.table("lineorder");
    let dim_tuples: usize = queries[0]
        .dims
        .iter()
        .map(|d| storage.row_count(storage.table(&d.dim)))
        .sum();
    let signals = SharingSignals {
        concurrency: concurrency.saturating_sub(1) as f64,
        fact_bytes: storage.table_bytes(fact) as f64,
        disk_bandwidth_bytes_per_sec: if disk {
            cfg.disk.bandwidth_bytes_per_sec
        } else {
            0.0
        },
        ..SharingSignals::cold(
            storage.row_count(fact) as f64,
            dim_tuples as f64,
            queries[0].dims.len(),
        )
    };
    let governor = SharingGovernor::new(cfg.cost, GovernorConfig::default());
    let qc_pred = governor.predicted_ns(Route::QueryCentric, &signals) / 1e9;
    let sh_pred = governor.predicted_ns(Route::Shared, &signals) / 1e9;
    let crossover = governor.crossover(&signals);
    println!("Governor a-priori at {concurrency} concurrent queries:");
    println!("  predicted query-centric response: {qc_pred:.4}s");
    println!("  predicted shared response:        {sh_pred:.4}s");
    println!(
        "  estimated sharing crossover:      {} quer{}",
        crossover,
        if crossover == 1 { "y" } else { "ies" }
    );
    println!(
        "  a-priori route:                   {:?}\n",
        governor.decide(&signals)
    );

    // ---- measured: the three policies + the paper's configs -----------
    println!("{:<12} {:>12} {:>8}  {}", "config", "mean (s)", "cores", "routing");
    let mut best: Option<(&'static str, f64)> = None;
    for policy in [
        ExecPolicy::QueryCentric,
        ExecPolicy::Shared,
        ExecPolicy::Adaptive,
    ] {
        let mut pc = cfg;
        pc.policy = Some(policy);
        let rep = run_batch(&dataset, &pc, &queries, false);
        let mean = rep.mean_latency_secs();
        let routing = rep
            .governor
            .map(|g| {
                format!(
                    "qc={} shared={} flips={}",
                    g.routed_query_centric, g.routed_shared, g.flips
                )
            })
            .unwrap_or_default();
        println!(
            "{:<12} {:>12.4} {:>8.2}  {}",
            rep.config, mean, rep.avg_cores_used, routing
        );
        if best.is_none_or(|(_, b)| mean < b) {
            best = Some((rep.config, mean));
        }
    }
    for engine in NamedConfig::all() {
        let mut ec = RunConfig::named(engine);
        ec.io_mode = cfg.io_mode;
        let rep = run_batch(&dataset, &ec, &queries, false);
        let mean = rep.mean_latency_secs();
        println!("{:<12} {:>12.4} {:>8.2}", rep.config, mean, rep.avg_cores_used);
        if best.is_none_or(|(_, b)| mean < b) {
            best = Some((rep.config, mean));
        }
    }
    let (winner, secs) = best.unwrap();
    println!("\nMeasured recommendation: {winner} ({secs:.4}s mean response).");
    println!(
        "Governor verdict: the adaptive policy routes this workload without \
         being told its regime; static configs are only right on their own \
         side of the crossover."
    );
}
