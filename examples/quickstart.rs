//! Quickstart: generate a small SSB database, run the same concurrent
//! workload under three sharing configurations, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use workshare::harness::run_batch;
use workshare::{workload, Dataset, NamedConfig, RunConfig};

fn main() {
    // 1. Generate data once (our SF 0.5 ≈ SSB SF 0.5 at 1/100 row scale).
    let dataset = Dataset::ssb(0.5, 42);
    println!(
        "Generated SSB dataset: {} tables, {} pages, {:.1} MB",
        dataset.table_names().len(),
        dataset.total_pages(),
        dataset.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. Build a batch of 32 concurrent SSB Q3.2 star queries with random
    //    predicates (the paper's sensitivity-analysis workload).
    let mut rng = workload::rng(7);
    let queries: Vec<_> = (0..32)
        .map(|i| workload::ssb_q3_2(i as u64, &mut rng))
        .collect();

    // 3. Run the batch under three configurations on a virtual 24-core
    //    machine and compare response times.
    println!("\n{:<10} {:>12} {:>12} {:>12}", "config", "mean (s)", "max (s)", "cores");
    for engine in [NamedConfig::Qpipe, NamedConfig::QpipeSp, NamedConfig::CjoinSp] {
        let cfg = RunConfig::named(engine);
        let report = run_batch(&dataset, &cfg, &queries, false);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.2}",
            report.config,
            report.mean_latency_secs(),
            report.max_latency_secs(),
            report.avg_cores_used
        );
    }

    // 4. Inspect one query's actual result rows.
    let cfg = RunConfig::named(NamedConfig::QpipeSp);
    let report = run_batch(&dataset, &cfg, &queries[..1], true);
    let rows = &report.results.as_ref().unwrap()[0];
    println!("\nFirst query returned {} groups; top 3:", rows.len());
    for row in rows.iter().take(3) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}
