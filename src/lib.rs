//! # workshare
//!
//! Reproduction of *“Sharing Data and Work Across Concurrent Analytical
//! Queries”* (Psaroudakis, Athanassoulis, Ailamaki — VLDB 2013).
//!
//! This root crate re-exports the public facade from [`workshare_core`]; the
//! individual subsystems live in their own crates:
//!
//! * [`workshare_sim`] — virtual-time multicore machine and simulated disk.
//! * [`workshare_common`] — values, schemas, predicates, plans, bitmaps.
//! * [`workshare_storage`] — paged storage manager, buffer pool, FS cache.
//! * [`workshare_datagen`] — SSB / TPC-H data generators.
//! * [`workshare_qpipe`] — staged engine with Simultaneous Pipelining (SP).
//! * [`workshare_cjoin`] — CJOIN Global Query Plan with shared operators.
//! * [`workshare_core`] — engine configurations, planner, harness, workloads.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use workshare_core::*;

/// Crate-level smoke check used by documentation tests.
///
/// ```
/// assert_eq!(workshare::paper(), "VLDB 2013");
/// ```
pub fn paper() -> &'static str {
    "VLDB 2013"
}
