//! # workshare
//!
//! Reproduction of *“Sharing Data and Work Across Concurrent Analytical
//! Queries”* (Psaroudakis, Athanassoulis, Ailamaki — VLDB 2013).
//!
//! This root crate re-exports the public facade from [`workshare_core`]; the
//! individual subsystems live in their own crates:
//!
//! * `workshare-sim` — virtual-time multicore machine and simulated disk.
//! * `workshare-common` — values, schemas, predicates, plans, bitmaps.
//! * `workshare-storage` — paged storage manager, buffer pool, FS cache.
//! * `workshare-datagen` — SSB / TPC-H data generators.
//! * `workshare-qpipe` — staged engine with Simultaneous Pipelining (SP).
//! * `workshare-cjoin` — CJOIN Global Query Plan with shared operators.
//! * [`workshare_core`] — engine configurations, planner, harness, workloads.
//!
//! See `README.md` for a quickstart and `docs/FIGURES.md` for the map of
//! paper-figure binaries.

pub use workshare_core::*;

/// Crate-level smoke check used by documentation tests.
///
/// ```
/// assert_eq!(workshare::paper(), "VLDB 2013");
/// ```
pub fn paper() -> &'static str {
    "VLDB 2013"
}
